package search_test

import (
	"reflect"
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/internal/state"
	"fairmc/internal/syncmodel"
	"fairmc/progs"
)

// normalize strips the wall-clock field so reports compare by content.
func normalize(r *search.Report) *search.Report {
	c := *r
	c.Elapsed = 0
	return &c
}

func TestParallelOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts search.Options
	}{
		{"StatefulPrune", search.Options{Parallelism: 4, StatefulPrune: true}},
		{"SleepSets", search.Options{Parallelism: 4, SleepSets: true}},
		{"Monitor", search.Options{Parallelism: 4, Monitor: state.NewCoverage()}},
		// DPOR itself parallelizes (work units), but not with a Monitor:
		// monitors observe executions from one goroutine.
		{"DPOR+Monitor", search.Options{Parallelism: 4, DPOR: true, Monitor: state.NewCoverage()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with Parallelism > 1 did not panic", tc.name)
				}
			}()
			search.Explore(racyIncrement, tc.opts)
		})
	}
}

// TestParallelismOneIsSequential: Parallelism 0 and 1 take the exact
// sequential code path, so every report field matches.
func TestParallelismOneIsSequential(t *testing.T) {
	base := search.Options{Fair: true, ContextBound: 2, ContinueAfterViolation: true}
	ref := search.Explore(racyIncrement, base)
	for _, p := range []int{0, 1} {
		opts := base
		opts.Parallelism = p
		got := search.Explore(racyIncrement, opts)
		if !reflect.DeepEqual(normalize(ref), normalize(got)) {
			t.Fatalf("Parallelism=%d differs from sequential:\n%+v\nvs\n%+v", p, ref, got)
		}
	}
}

// TestParallelStrideDeterminism: same Seed + same Parallelism must
// produce byte-identical reports across repeated runs, for both a
// bug-stopping and a count-everything random walk.
func TestParallelStrideDeterminism(t *testing.T) {
	for _, cont := range []bool{false, true} {
		var reps []*search.Report
		for i := 0; i < 3; i++ {
			reps = append(reps, search.Explore(racyIncrement, search.Options{
				Fair:                   true,
				RandomWalk:             true,
				MaxExecutions:          400,
				MaxSteps:               1000,
				Seed:                   3,
				Parallelism:            4,
				ContinueAfterViolation: cont,
			}))
		}
		for i := 1; i < 3; i++ {
			if !reflect.DeepEqual(normalize(reps[0]), normalize(reps[i])) {
				t.Fatalf("cont=%v: run %d differs:\n%+v\nvs\n%+v", cont, i, reps[0], reps[i])
			}
		}
	}
}

func TestParallelPrefixDeterminism(t *testing.T) {
	var reps []*search.Report
	for i := 0; i < 3; i++ {
		reps = append(reps, search.Explore(fig3, search.Options{
			Fair:         true,
			ContextBound: -1,
			MaxSteps:     10000,
			Parallelism:  4,
		}))
	}
	for i := 1; i < 3; i++ {
		if !reflect.DeepEqual(normalize(reps[0]), normalize(reps[i])) {
			t.Fatalf("run %d differs:\n%+v\nvs\n%+v", i, reps[0], reps[i])
		}
	}
}

// TestParallelStrideMatchesSequential: the stride partition explores
// the very same seeded schedules as the sequential random walk and the
// index-ordered merge applies the same stop rule, so the entire report
// matches, not just the bug.
func TestParallelStrideMatchesSequential(t *testing.T) {
	for _, pct := range []bool{false, true} {
		for _, cont := range []bool{false, true} {
			opts := search.Options{
				Fair:                   true,
				RandomWalk:             !pct,
				PCT:                    pct,
				MaxExecutions:          400,
				MaxSteps:               1000,
				Seed:                   3,
				ContinueAfterViolation: cont,
			}
			seq := search.Explore(racyIncrement, opts)
			opts.Parallelism = 4
			par := search.Explore(racyIncrement, opts)
			if !reflect.DeepEqual(normalize(seq), normalize(par)) {
				t.Fatalf("pct=%v cont=%v: parallel differs from sequential:\n%+v\nvs\n%+v",
					pct, cont, seq, par)
			}
		}
	}
}

// TestParallelPrefixMatchesSequential: the frontier partitions the
// schedule tree in DFS order, so the ordered merge reproduces the
// sequential report exactly — on clean exhaustion, on stop-at-first-
// bug, and on count-everything searches.
func TestParallelPrefixMatchesSequential(t *testing.T) {
	progs := map[string]func(*engine.T){
		"racy": racyIncrement,
		"fig3": fig3,
	}
	for name, prog := range progs {
		for _, cont := range []bool{false, true} {
			opts := search.Options{
				Fair:                   true,
				ContextBound:           -1,
				MaxSteps:               10000,
				ContinueAfterViolation: cont,
			}
			seq := search.Explore(prog, opts)
			opts.Parallelism = 4
			par := search.Explore(prog, opts)
			if !reflect.DeepEqual(normalize(seq), normalize(par)) {
				t.Fatalf("%s cont=%v: parallel differs from sequential:\n%+v\nvs\n%+v",
					name, cont, seq, par)
			}
		}
	}
}

// TestParallelPrefixContextBound checks the preemption-budget filter
// survives the prefix split: the budget is recomputed along each
// replayed prefix, so cb=0 still misses the race and cb=1 still finds
// it, with reports identical to the sequential searcher's.
func TestParallelPrefixContextBound(t *testing.T) {
	for _, cb := range []int{0, 1} {
		opts := search.Options{Fair: true, ContextBound: cb}
		seq := search.Explore(racyIncrement, opts)
		opts.Parallelism = 4
		par := search.Explore(racyIncrement, opts)
		if !reflect.DeepEqual(normalize(seq), normalize(par)) {
			t.Fatalf("cb=%d: parallel differs from sequential:\n%+v\nvs\n%+v", cb, seq, par)
		}
		if cb == 0 && par.Violations != 0 {
			t.Fatalf("cb=0 parallel found the race")
		}
		if cb == 1 && par.FirstBug == nil {
			t.Fatalf("cb=1 parallel missed the race")
		}
	}
}

// TestParallelSeededBugs: P=4 and P=1 find the same seeded bugs — same
// schedule, same execution index — on the paper's Table 3 subjects.
func TestParallelSeededBugs(t *testing.T) {
	cases := []struct {
		prog string
		opts search.Options
	}{
		// Work-stealing queue: planted lock-free-steal bug, random walk.
		{"wsq-bug2-lockfree-steal", search.Options{
			Fair: true, RandomWalk: true, MaxExecutions: 3000, MaxSteps: 4000, Seed: 7,
		}},
		// Dryad channels: planted read-after-release bug, fair
		// context-bounded DFS.
		{"dryad-bug2-read-after-release", search.Options{
			Fair: true, ContextBound: 2, MaxSteps: 4000,
		}},
		// Promise: stale-read livelock, found as a fair divergence.
		{"promise-livelock", search.Options{
			Fair: true, ContextBound: -1, MaxSteps: 800,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.prog, func(t *testing.T) {
			p, ok := progs.Lookup(tc.prog)
			if !ok {
				t.Fatalf("unknown program %s", tc.prog)
			}
			seq := search.Explore(p.Body, tc.opts)
			opts := tc.opts
			opts.Parallelism = 4
			par := search.Explore(p.Body, opts)
			checkSameFinding(t, seq, par)
		})
	}
}

func checkSameFinding(t *testing.T, seq, par *search.Report) {
	t.Helper()
	if (seq.FirstBug == nil) != (par.FirstBug == nil) ||
		(seq.Divergence == nil) != (par.Divergence == nil) {
		t.Fatalf("findings differ: seq bug=%v div=%v, par bug=%v div=%v",
			seq.FirstBug != nil, seq.Divergence != nil,
			par.FirstBug != nil, par.Divergence != nil)
	}
	if seq.FirstBug == nil && seq.Divergence == nil {
		t.Fatal("no finding in either mode; test configuration is too weak")
	}
	if seq.FirstBug != nil {
		if par.FirstBugExecution != seq.FirstBugExecution {
			t.Fatalf("bug execution index: seq %d, par %d",
				seq.FirstBugExecution, par.FirstBugExecution)
		}
		if !reflect.DeepEqual(seq.FirstBug.Schedule, par.FirstBug.Schedule) {
			t.Fatal("bug schedules differ")
		}
		if seq.FirstBug.Outcome != par.FirstBug.Outcome {
			t.Fatalf("bug outcomes differ: %v vs %v", seq.FirstBug.Outcome, par.FirstBug.Outcome)
		}
	}
	if seq.Divergence != nil {
		if par.DivergenceExecution != seq.DivergenceExecution {
			t.Fatalf("divergence execution index: seq %d, par %d",
				seq.DivergenceExecution, par.DivergenceExecution)
		}
		if !reflect.DeepEqual(seq.Divergence.Schedule, par.Divergence.Schedule) {
			t.Fatal("divergence schedules differ")
		}
	}
}

// TestParallelRaceClean drives both sharding modes with Parallelism 8
// on multi-threaded workloads; under `go test -race` this exercises
// the cross-worker structures with the real race detector.
func TestParallelRaceClean(t *testing.T) {
	counter := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		m := syncmodel.NewMutex(t, "m")
		wg := syncmodel.NewWaitGroup(t, "wg", 3)
		for i := 0; i < 3; i++ {
			t.Go("inc", func(t *engine.T) {
				m.Lock(t)
				x.Store(t, x.Load(t)+1)
				m.Unlock(t)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
	rep := search.Explore(counter, search.Options{
		Fair: true, ContextBound: -1, MaxSteps: 10000, Parallelism: 8,
	})
	if !rep.Exhausted {
		t.Fatalf("prefix-mode search did not exhaust: %+v", rep)
	}
	walk := search.Explore(counter, search.Options{
		Fair: true, RandomWalk: true, MaxExecutions: 500, MaxSteps: 10000,
		Seed: 1, Parallelism: 8, ContinueAfterViolation: true,
	})
	if walk.Executions != 500 {
		t.Fatalf("stride-mode executions = %d, want 500", walk.Executions)
	}
}
