package minios

import "fairmc/conc"

// NameServer is the kernel's registration directory: every driver and
// service registers during boot; the kernel seals the namespace once
// boot completes, after which registration is an error (the invariant
// the boot protocol must maintain).
type NameServer struct {
	mu      *conc.Mutex
	entries *conc.IntArray // 1 = registered
	count   *conc.IntVar
	sealed  *conc.IntVar
}

// NewNameServer creates a directory with capacity slots.
func NewNameServer(t *conc.T, capacity int) *NameServer {
	return &NameServer{
		mu:      conc.NewMutex(t, "ns.mu"),
		entries: conc.NewIntArray(t, "ns.entries", capacity),
		count:   conc.NewIntVar(t, "ns.count", 0),
		sealed:  conc.NewIntVar(t, "ns.sealed", 0),
	}
}

// Register records slot id; double registration and registration
// after seal are detected errors.
func (ns *NameServer) Register(t *conc.T, id int) {
	ns.mu.Lock(t)
	t.Assert(ns.sealed.Load(t) == 0, "registration after namespace seal")
	t.Assert(ns.entries.Get(t, id) == 0, "double registration")
	ns.entries.Set(t, id, 1)
	ns.count.Add(t, 1)
	ns.mu.Unlock(t)
}

// Lookup reports whether slot id is registered.
func (ns *NameServer) Lookup(t *conc.T, id int) bool {
	ns.mu.Lock(t)
	ok := ns.entries.Get(t, id) == 1
	ns.mu.Unlock(t)
	return ok
}

// Count returns the number of registrations.
func (ns *NameServer) Count(t *conc.T) int64 {
	ns.mu.Lock(t)
	n := ns.count.Load(t)
	ns.mu.Unlock(t)
	return n
}

// Seal freezes the namespace; the kernel calls it when boot completes.
func (ns *NameServer) Seal(t *conc.T) {
	ns.mu.Lock(t)
	ns.sealed.Store(t, 1)
	ns.mu.Unlock(t)
}
