// Package minios is a miniature operating system model: the substrate
// behind the reproduction's Singularity experiment (Table 1). The
// paper's flagship demonstration is checking the complete boot and
// shutdown of the Singularity research kernel; what that exercise
// stresses — and what this package models — is the synchronization
// skeleton of an OS: services registering with a name server, clients
// calling services over IPC ports, a filesystem service multiplexing
// state behind a lock, drivers waiting for the subsystems they need,
// and an orderly broadcast shutdown. Every wait is either blocking or
// a polite spin (finite-timeout/yield), so the model is
// good-samaritan-compliant and fair-terminating under its harness.
package minios

import (
	"fmt"

	"fairmc/conc"
)

// Message field packing for the int64 IPC payload.
const (
	opShift     = 32
	clientShift = 48
	argMask     = (int64(1) << opShift) - 1
)

// encode packs (client, op, arg) into one IPC word.
func encode(client, op int, arg int64) int64 {
	if arg < 0 || arg >= (1<<opShift) {
		panic(fmt.Sprintf("minios: IPC arg %d out of range", arg))
	}
	return int64(client)<<clientShift | int64(op)<<opShift | arg
}

// decode unpacks an IPC word.
func decode(msg int64) (client, op int, arg int64) {
	return int(msg >> clientShift), int(msg>>opShift) & 0xffff, msg & argMask
}

// Port is a request/response IPC endpoint: clients send requests into
// a bounded channel and block on their private reply channel; the
// owning service loop decodes, handles, and replies. This is the
// shape of Singularity's channel contracts reduced to scalar payloads.
type Port struct {
	name    string
	req     *conc.Channel
	replies []*conc.Channel
}

// NewPort creates a port with the given request backlog and number of
// client slots.
func NewPort(t *conc.T, name string, backlog, clients int) *Port {
	p := &Port{
		name: name,
		req:  conc.NewChannel(t, name+".req", backlog),
	}
	for i := 0; i < clients; i++ {
		p.replies = append(p.replies, conc.NewChannel(t, fmt.Sprintf("%s.reply%d", name, i), 1))
	}
	return p
}

// Call performs a synchronous request from the given client slot.
func (p *Port) Call(t *conc.T, client, op int, arg int64) int64 {
	if client < 0 || client >= len(p.replies) {
		t.Failf("port %q: bad client slot %d", p.name, client)
	}
	p.req.Send(t, encode(client, op, arg))
	v, ok := p.replies[client].Recv(t)
	if !ok {
		t.Failf("port %q: reply channel closed under client %d", p.name, client)
	}
	return v
}

// Handler processes one request and returns the reply.
type Handler func(t *conc.T, op int, arg int64) int64

// Serve runs the service loop until stop reports true and the backlog
// is drained. The idle path sleeps with a finite timeout — a yielding
// transition — so a polling service is a good samaritan.
func (p *Port) Serve(t *conc.T, stop func(*conc.T) bool, h Handler) {
	for {
		t.Label(1)
		if msg, _, ok := p.req.TryRecv(t); ok {
			client, op, arg := decode(msg)
			p.replies[client].Send(t, h(t, op, arg))
			continue
		}
		if stop(t) {
			return
		}
		t.Sleep(1)
	}
}

// Pending returns the request backlog length (harness assertions).
func (p *Port) Pending() int { return p.req.Len() }
