package minios

import "fairmc/conc"

// Filesystem operations served over the FS port.
const (
	FSAlloc = iota + 1 // alloc an inode, reply fid (or FSErr)
	FSWrite            // arg = fid<<16|value, reply FSOk
	FSRead             // arg = fid, reply value
	FSFree             // arg = fid, reply FSOk
)

// FS reply sentinels.
const (
	FSOk  = int64(0)
	FSErr = int64(1) << 30
)

// FileSystem is a tiny in-memory filesystem service: a fixed inode
// table behind a mutex, exposed as a Port handler. The interesting
// property for the checker is the same as in a real kernel: the table
// is shared mutable state that concurrent Call sequences must never
// corrupt — read-after-write must return the written value, and an
// inode must never be double-allocated.
type FileSystem struct {
	mu        *conc.Mutex
	allocated *conc.IntArray
	data      *conc.IntArray
}

// NewFileSystem creates a filesystem with the given inode count.
func NewFileSystem(t *conc.T, inodes int) *FileSystem {
	return &FileSystem{
		mu:        conc.NewMutex(t, "fs.mu"),
		allocated: conc.NewIntArray(t, "fs.allocated", inodes),
		data:      conc.NewIntArray(t, "fs.data", inodes),
	}
}

// Handle implements the Port Handler for the filesystem.
func (fs *FileSystem) Handle(t *conc.T, op int, arg int64) int64 {
	switch op {
	case FSAlloc:
		fs.mu.Lock(t)
		defer fs.mu.Unlock(t)
		for i := 0; i < fs.allocated.Len(); i++ {
			if fs.allocated.Get(t, i) == 0 {
				fs.allocated.Set(t, i, 1)
				fs.data.Set(t, i, 0)
				return int64(i)
			}
		}
		return FSErr
	case FSWrite:
		fid := int(arg >> 16)
		val := arg & 0xffff
		fs.mu.Lock(t)
		defer fs.mu.Unlock(t)
		t.Assert(fs.valid(t, fid), "write to unallocated inode")
		fs.data.Set(t, fid, val)
		return FSOk
	case FSRead:
		fid := int(arg)
		fs.mu.Lock(t)
		defer fs.mu.Unlock(t)
		t.Assert(fs.valid(t, fid), "read of unallocated inode")
		return fs.data.Get(t, fid)
	case FSFree:
		fid := int(arg)
		fs.mu.Lock(t)
		defer fs.mu.Unlock(t)
		t.Assert(fs.valid(t, fid), "free of unallocated inode")
		fs.allocated.Set(t, fid, 0)
		return FSOk
	default:
		t.Failf("fs: unknown op %d", op)
		return FSErr
	}
}

func (fs *FileSystem) valid(t *conc.T, fid int) bool {
	return fid >= 0 && fid < fs.allocated.Len() && fs.allocated.Get(t, fid) == 1
}
