package minios

import (
	"fmt"

	"fairmc/conc"
)

// Config sizes the modeled system. The thread count of a boot is
// 1 (kernel) + 1 (memory) + 1 (fs service) + Drivers + Services + Apps.
type Config struct {
	// Drivers is the number of device-driver threads.
	Drivers int
	// Services is the number of generic request-serving system
	// services (each owning a Port).
	Services int
	// Apps is the number of application threads.
	Apps int
	// RequestsPerApp bounds each app's service calls — the §2 trick
	// that makes a "runs forever" system fair-terminating under test.
	RequestsPerApp int
	// Inodes sizes the filesystem.
	Inodes int
}

// Validate panics on nonsensical configurations.
func (c Config) Validate() {
	if c.Drivers < 1 || c.Services < 1 || c.Apps < 1 || c.RequestsPerApp < 1 || c.Inodes < 1 {
		panic(fmt.Sprintf("minios: bad config %+v", c))
	}
}

// Threads returns the number of model threads a boot creates.
func (c Config) Threads() int {
	return 3 + c.Drivers + c.Services + c.Apps
}

// Boot runs the full life cycle — boot, serve, shutdown — as the body
// of the main thread. The protocol:
//
//  1. the memory manager comes up and signals memReady;
//  2. the filesystem service starts (needs memory) and registers;
//  3. drivers poll for memory with finite timeouts (yielding), then
//     register;
//  4. services register and enter their serve loops;
//  5. the kernel waits for all registrations, seals the namespace,
//     and admits the applications;
//  6. each app allocates a file, makes its bounded service calls,
//     verifies read-after-write through the filesystem port, and
//     frees the file;
//  7. the kernel broadcasts shutdown and joins everything.
//
// Every assertion is an invariant the real protocol maintains: no
// registration after seal, no service reply corruption, filesystem
// consistency, and complete shutdown.
func Boot(cfg Config) func(*conc.T) {
	cfg.Validate()
	return func(t *conc.T) {
		memReady := conc.NewEvent(t, "mem.ready", true, false)
		shutdown := conc.NewEvent(t, "shutdown", true, false)
		stopped := func(t *conc.T) bool { return shutdown.Signaled() }

		ns := NewNameServer(t, cfg.Drivers+cfg.Services+1)
		fs := NewFileSystem(t, cfg.Inodes)
		fsPort := NewPort(t, "fs", 2, cfg.Apps)
		svcPorts := make([]*Port, cfg.Services)
		served := make([]*conc.IntVar, cfg.Services)
		for i := range svcPorts {
			svcPorts[i] = NewPort(t, fmt.Sprintf("svc%d", i), 1, cfg.Apps)
			served[i] = conc.NewIntVar(t, fmt.Sprintf("svc%d.served", i), 0)
		}

		bootWG := conc.NewWaitGroup(t, "bootWG", int64(1+cfg.Drivers+cfg.Services))
		var handles []*conc.Handle

		// Memory manager.
		handles = append(handles, t.Go("memory", func(t *conc.T) {
			memReady.Set(t)
			shutdown.Wait(t)
		}))

		// Filesystem service: slot 0 of the name server.
		handles = append(handles, t.Go("fsservice", func(t *conc.T) {
			memReady.Wait(t)
			ns.Register(t, 0)
			bootWG.Done(t)
			fsPort.Serve(t, stopped, fs.Handle)
		}))

		// Drivers: slots 1..Drivers.
		for d := 0; d < cfg.Drivers; d++ {
			slot := 1 + d
			handles = append(handles, t.Go(fmt.Sprintf("driver%d", d), func(t *conc.T) {
				// Poll the hardware bring-up with finite timeouts.
				for {
					t.Label(1)
					if memReady.WaitTimeout(t) {
						break
					}
				}
				ns.Register(t, slot)
				bootWG.Done(t)
				shutdown.Wait(t)
			}))
		}

		// Services: slots Drivers+1 .. Drivers+Services. Each echoes
		// arg+1 and counts requests.
		for s := 0; s < cfg.Services; s++ {
			s := s
			slot := 1 + cfg.Drivers + s
			handles = append(handles, t.Go(fmt.Sprintf("service%d", s), func(t *conc.T) {
				memReady.Wait(t)
				ns.Register(t, slot)
				bootWG.Done(t)
				svcPorts[s].Serve(t, stopped, func(t *conc.T, op int, arg int64) int64 {
					served[s].Add(t, 1)
					return arg + 1
				})
			}))
		}

		// Boot barrier: all subsystems registered, then seal.
		bootWG.Wait(t)
		t.Assert(ns.Count(t) == int64(1+cfg.Drivers+cfg.Services),
			"all subsystems registered before seal")
		ns.Seal(t)

		// Applications.
		appWG := conc.NewWaitGroup(t, "appWG", int64(cfg.Apps))
		for a := 0; a < cfg.Apps; a++ {
			a := a
			handles = append(handles, t.Go(fmt.Sprintf("app%d", a), func(t *conc.T) {
				// The namespace must look fully booted to apps.
				t.Assert(ns.Lookup(t, 0), "fs registered before apps run")
				fid := fsPort.Call(t, a, FSAlloc, 0)
				t.Assert(fid != FSErr, "inode available")
				for r := 0; r < cfg.RequestsPerApp; r++ {
					// Service call: echo through a service port.
					svc := a % cfg.Services
					got := svcPorts[svc].Call(t, a, 1, int64(a))
					t.Assert(got == int64(a)+1, "service reply")
					// Filesystem round trip.
					val := int64(a*8 + r + 1)
					t.Assert(fsPort.Call(t, a, FSWrite, fid<<16|val) == FSOk, "fs write ok")
					t.Assert(fsPort.Call(t, a, FSRead, fid) == val, "read-after-write")
				}
				t.Assert(fsPort.Call(t, a, FSFree, fid) == FSOk, "fs free ok")
				appWG.Done(t)
			}))
		}
		appWG.Wait(t)

		// Shutdown: broadcast and join everything.
		shutdown.Set(t)
		for _, h := range handles {
			h.Join(t)
		}
		// Post-conditions: all requests served, no stragglers.
		total := int64(0)
		for s := 0; s < cfg.Services; s++ {
			total += served[s].Load(t)
			t.Assert(svcPorts[s].Pending() == 0, "service backlog drained")
		}
		t.Assert(total == int64(cfg.Apps*cfg.RequestsPerApp), "every request served")
		t.Assert(fsPort.Pending() == 0, "fs backlog drained")
	}
}
