package minios

import (
	"fmt"

	"fairmc/conc"
)

// IRQController models a simple interrupt controller: numbered lines
// that devices raise and drivers wait on, with per-line masking. A
// raise on a masked line is latched (pending) and delivered on
// unmask — losing it instead is the classic driver bug, expressible
// here by skipping the latch.
type IRQController struct {
	lines   []*conc.Event // auto-reset: one delivery per wait
	masked  *conc.IntArray
	pending *conc.IntArray
}

// NewIRQController creates a controller with n lines, all unmasked.
func NewIRQController(t *conc.T, n int) *IRQController {
	c := &IRQController{
		masked:  conc.NewIntArray(t, "irq.masked", n),
		pending: conc.NewIntArray(t, "irq.pending", n),
	}
	for i := 0; i < n; i++ {
		c.lines = append(c.lines, conc.NewEvent(t, fmt.Sprintf("irq%d", i), false, false))
	}
	return c
}

// Raise asserts the line: delivered immediately when unmasked,
// latched when masked.
func (c *IRQController) Raise(t *conc.T, line int) {
	if c.masked.Get(t, line) == 1 {
		c.pending.Set(t, line, 1)
		return
	}
	c.lines[line].Set(t)
}

// Wait blocks the calling driver until the line fires.
func (c *IRQController) Wait(t *conc.T, line int) {
	c.lines[line].Wait(t)
}

// WaitTimeout polls the line with a finite timeout (a yielding
// transition), for drivers that interleave interrupt service with
// other duties.
func (c *IRQController) WaitTimeout(t *conc.T, line int) bool {
	return c.lines[line].WaitTimeout(t)
}

// Mask suppresses delivery on the line; raises are latched.
func (c *IRQController) Mask(t *conc.T, line int) {
	c.masked.Set(t, line, 1)
}

// Unmask re-enables the line and delivers a latched raise.
func (c *IRQController) Unmask(t *conc.T, line int) {
	c.masked.Set(t, line, 0)
	if c.pending.Get(t, line) == 1 {
		c.pending.Set(t, line, 0)
		c.lines[line].Set(t)
	}
}

// Disk operations on the driver port.
const (
	DiskRead = iota + 1
)

// DiskConfig sizes the disk subsystem harness.
type DiskConfig struct {
	// Sectors is the disk size; sector i holds value i*3+1.
	Sectors int
	// Clients is the number of reader threads.
	Clients int
	// ReadsPerClient bounds the harness.
	ReadsPerClient int
}

// DiskSubsystem builds an interrupt-driven device stack: clients call
// the driver over a port; the driver submits the sector to the device
// mailbox and blocks on the IRQ line; the device thread "performs the
// I/O" (fills the transfer buffer) and raises the interrupt; the
// driver completes the request. Every read must return the sector's
// value — lost interrupts or torn mailbox updates would deadlock or
// corrupt, and the checker explores for both.
func DiskSubsystem(cfg DiskConfig) func(*conc.T) {
	if cfg.Sectors < 1 || cfg.Clients < 1 || cfg.ReadsPerClient < 1 {
		panic(fmt.Sprintf("minios: bad DiskConfig %+v", cfg))
	}
	return func(t *conc.T) {
		irq := NewIRQController(t, 1)
		// Device registers: the request mailbox (sector, doorbell) and
		// the transfer buffer.
		reqSector := conc.NewIntVar(t, "dev.sector", 0)
		doorbell := conc.NewEvent(t, "dev.doorbell", false, false)
		xfer := conc.NewIntVar(t, "dev.xfer", 0)
		devStop := conc.NewIntVar(t, "dev.stop", 0)

		port := NewPort(t, "disk", 1, cfg.Clients)
		stop := conc.NewIntVar(t, "drv.stop", 0)

		// The device: waits for the doorbell, services, raises IRQ 0.
		dev := t.Go("device", func(t *conc.T) {
			for {
				t.Label(1)
				if doorbell.WaitTimeout(t) {
					sector := reqSector.Load(t)
					xfer.Store(t, sector*3+1) // the sector's content
					irq.Raise(t, 0)
					continue
				}
				if devStop.Load(t) == 1 {
					return
				}
			}
		})

		// The driver: serves the port; each read is a submit+IRQ-wait.
		drv := t.Go("driver", func(t *conc.T) {
			port.Serve(t, func(t *conc.T) bool { return stop.Peek() == 1 },
				func(t *conc.T, op int, arg int64) int64 {
					if op != DiskRead {
						t.Failf("disk: unknown op %d", op)
					}
					reqSector.Store(t, arg)
					doorbell.Set(t)
					irq.Wait(t, 0)
					return xfer.Load(t)
				})
		})

		// Clients.
		wg := conc.NewWaitGroup(t, "wg", int64(cfg.Clients))
		for c := 0; c < cfg.Clients; c++ {
			c := c
			t.Go(fmt.Sprintf("client%d", c), func(t *conc.T) {
				for r := 0; r < cfg.ReadsPerClient; r++ {
					sector := int64((c + r) % cfg.Sectors)
					got := port.Call(t, c, DiskRead, sector)
					t.Assert(got == sector*3+1,
						fmt.Sprintf("read sector %d: got %d", sector, got))
				}
				wg.Done(t)
			})
		}
		wg.Wait(t)
		stop.Store(t, 1)
		drv.Join(t)
		devStop.Store(t, 1)
		dev.Join(t)
	}
}
