package minios_test

import (
	"testing"
	"time"

	"fairmc"
	"fairmc/conc"
	"fairmc/internal/minios"
)

func small() minios.Config {
	return minios.Config{Drivers: 1, Services: 1, Apps: 1, RequestsPerApp: 1, Inodes: 2}
}

func TestBootTerminatesOnce(t *testing.T) {
	cfg := minios.Config{Drivers: 4, Services: 4, Apps: 3, RequestsPerApp: 2, Inodes: 4}
	r := fairmc.RunOnce(minios.Boot(cfg), fairmc.Defaults())
	if r.Outcome != fairmc.Terminated {
		t.Fatalf("boot outcome = %v\n%s", r.Outcome, r.FormatTrace())
	}
	if r.Threads != cfg.Threads() {
		t.Fatalf("threads = %d, want %d", r.Threads, cfg.Threads())
	}
}

func TestBootUnderBoundedSearch(t *testing.T) {
	opts := fairmc.Defaults()
	opts.ContextBound = 1
	opts.TimeLimit = 120 * time.Second
	opts.MaxExecutions = 200000
	res := mustCheck(t, minios.Boot(small()), opts)
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("boot invariant broken:\n%s", res.FirstBug.FormatTrace())
		}
		t.Fatalf("divergence: %s", res.Liveness)
	}
}

func TestBootAdversarialSchedules(t *testing.T) {
	// Many random walks with different seeds: every one must boot and
	// shut down cleanly.
	opts := fairmc.Defaults()
	opts.RandomWalk = true
	opts.MaxExecutions = 300
	opts.Seed = 99
	cfg := minios.Config{Drivers: 2, Services: 2, Apps: 2, RequestsPerApp: 1, Inodes: 2}
	res := mustCheck(t, minios.Boot(cfg), opts)
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("random walk broke the boot:\n%s", res.FirstBug.FormatTrace())
		}
		t.Fatalf("divergence: %s", res.Liveness)
	}
	if res.NonTerminating != 0 {
		t.Fatalf("%d walks failed to terminate", res.NonTerminating)
	}
}

func TestNameServerInvariants(t *testing.T) {
	// Direct unit exercise of the name server under the checker.
	prog := func(t *conc.T) {
		ns := minios.NewNameServer(t, 3)
		wg := conc.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			i := i
			t.Go("reg", func(t *conc.T) {
				ns.Register(t, i)
				t.Assert(ns.Lookup(t, i), "visible after register")
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(ns.Count(t) == 2, "both registered")
		ns.Seal(t)
	}
	res := mustCheck(t, prog, fairmc.Defaults())
	if !res.Ok() || !res.Exhausted {
		t.Fatalf("name server check: %+v", res.Report)
	}
}

func TestNameServerRejectsAfterSeal(t *testing.T) {
	prog := func(t *conc.T) {
		ns := minios.NewNameServer(t, 2)
		ns.Seal(t)
		ns.Register(t, 0)
	}
	res := mustCheck(t, prog, fairmc.Defaults())
	if res.FirstBug == nil {
		t.Fatal("registration after seal not detected")
	}
}

func TestNameServerRejectsDoubleRegistration(t *testing.T) {
	prog := func(t *conc.T) {
		ns := minios.NewNameServer(t, 2)
		ns.Register(t, 1)
		ns.Register(t, 1)
	}
	res := mustCheck(t, prog, fairmc.Defaults())
	if res.FirstBug == nil {
		t.Fatal("double registration not detected")
	}
}

func TestFileSystemSemantics(t *testing.T) {
	prog := func(t *conc.T) {
		fs := minios.NewFileSystem(t, 2)
		a := fs.Handle(t, minios.FSAlloc, 0)
		b := fs.Handle(t, minios.FSAlloc, 0)
		t.Assert(a != b, "distinct inodes")
		t.Assert(fs.Handle(t, minios.FSAlloc, 0) == minios.FSErr, "table full")
		t.Assert(fs.Handle(t, minios.FSWrite, a<<16|42) == minios.FSOk, "write")
		t.Assert(fs.Handle(t, minios.FSRead, a) == 42, "read-after-write")
		t.Assert(fs.Handle(t, minios.FSRead, b) == 0, "fresh inode zeroed")
		t.Assert(fs.Handle(t, minios.FSFree, a) == minios.FSOk, "free")
		c := fs.Handle(t, minios.FSAlloc, 0)
		t.Assert(c == a, "freed inode reused")
		t.Assert(fs.Handle(t, minios.FSRead, c) == 0, "reused inode zeroed")
	}
	res := mustCheck(t, prog, fairmc.Defaults())
	if !res.Ok() || !res.Exhausted {
		t.Fatalf("fs check: %+v", res.Report)
	}
}

func TestFileSystemRejectsInvalidOps(t *testing.T) {
	for _, tc := range []struct {
		name string
		body func(t *conc.T, fs *minios.FileSystem)
	}{
		{"read unallocated", func(t *conc.T, fs *minios.FileSystem) {
			fs.Handle(t, minios.FSRead, 0)
		}},
		{"write unallocated", func(t *conc.T, fs *minios.FileSystem) {
			fs.Handle(t, minios.FSWrite, 0<<16|1)
		}},
		{"free unallocated", func(t *conc.T, fs *minios.FileSystem) {
			fs.Handle(t, minios.FSFree, 0)
		}},
		{"unknown op", func(t *conc.T, fs *minios.FileSystem) {
			fs.Handle(t, 99, 0)
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := mustCheck(t, func(t *conc.T) {
				fs := minios.NewFileSystem(t, 1)
				tc.body(t, fs)
			}, fairmc.Defaults())
			if res.FirstBug == nil {
				t.Fatal("misuse not detected")
			}
		})
	}
}

func TestPortRequestResponse(t *testing.T) {
	prog := func(t *conc.T) {
		p := minios.NewPort(t, "echo", 1, 2)
		stop := conc.NewIntVar(t, "stop", 0)
		h := t.Go("server", func(t *conc.T) {
			p.Serve(t, func(t *conc.T) bool { return stop.Peek() == 1 },
				func(t *conc.T, op int, arg int64) int64 { return arg * 2 },
			)
		})
		wg := conc.NewWaitGroup(t, "wg", 2)
		for c := 0; c < 2; c++ {
			c := c
			t.Go("client", func(t *conc.T) {
				got := p.Call(t, c, 1, int64(c+5))
				t.Assert(got == int64(c+5)*2, "echo doubled")
				wg.Done(t)
			})
		}
		wg.Wait(t)
		stop.Store(t, 1)
		h.Join(t)
		t.Assert(p.Pending() == 0, "backlog drained")
	}
	opts := fairmc.Defaults()
	opts.ContextBound = 2
	opts.TimeLimit = 60 * time.Second
	res := mustCheck(t, prog, opts)
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("port check:\n%s", res.FirstBug.FormatTrace())
		}
		t.Fatalf("port divergence: %s", res.Liveness)
	}
}

func TestPortBadClientSlot(t *testing.T) {
	res := mustCheck(t, func(t *conc.T) {
		p := minios.NewPort(t, "p", 1, 1)
		p.Call(t, 5, 1, 0)
	}, fairmc.Defaults())
	if res.FirstBug == nil {
		t.Fatal("bad client slot not detected")
	}
}

func TestConfigValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	minios.Config{}.Validate()
}

func TestIRQControllerSemantics(t *testing.T) {
	prog := func(t *conc.T) {
		irq := minios.NewIRQController(t, 2)
		// Unmasked raise delivers.
		irq.Raise(t, 0)
		t.Assert(irq.WaitTimeout(t, 0), "unmasked raise delivered")
		t.Assert(!irq.WaitTimeout(t, 0), "auto-reset consumed")
		// Masked raise is latched and delivered on unmask.
		irq.Mask(t, 1)
		irq.Raise(t, 1)
		t.Assert(!irq.WaitTimeout(t, 1), "masked line silent")
		irq.Unmask(t, 1)
		t.Assert(irq.WaitTimeout(t, 1), "latched raise delivered on unmask")
	}
	res := mustCheck(t, prog, fairmc.Defaults())
	if !res.Ok() || !res.Exhausted {
		t.Fatalf("irq semantics: %+v", res.Report)
	}
}

func TestIRQWaitBlocksUntilRaise(t *testing.T) {
	prog := func(t *conc.T) {
		irq := minios.NewIRQController(t, 1)
		progressed := conc.NewIntVar(t, "p", 0)
		h := t.Go("driver", func(t *conc.T) {
			irq.Wait(t, 0)
			progressed.Store(t, 1)
		})
		t.Assert(progressed.Load(t) == 0, "driver blocked before raise")
		irq.Raise(t, 0)
		h.Join(t)
		t.Assert(progressed.Load(t) == 1, "driver released by raise")
	}
	res := mustCheck(t, prog, fairmc.Defaults())
	if !res.Ok() || !res.Exhausted {
		t.Fatalf("irq wait: %+v", res.Report)
	}
}

func TestDiskSubsystemOnce(t *testing.T) {
	r := fairmc.RunOnce(minios.DiskSubsystem(minios.DiskConfig{
		Sectors: 3, Clients: 2, ReadsPerClient: 2,
	}), fairmc.Defaults())
	if r.Outcome != fairmc.Terminated {
		t.Fatalf("outcome = %v\n%s", r.Outcome, r.FormatTrace())
	}
}

func TestDiskSubsystemBoundedSearch(t *testing.T) {
	opts := fairmc.Defaults()
	opts.ContextBound = 1
	opts.TimeLimit = 120 * time.Second
	opts.MaxExecutions = 200000
	res := mustCheck(t, minios.DiskSubsystem(minios.DiskConfig{
		Sectors: 2, Clients: 1, ReadsPerClient: 2,
	}), opts)
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("disk invariant broken:\n%s", res.FirstBug.FormatTrace())
		}
		t.Fatalf("divergence: %s", res.Liveness)
	}
}

func TestDiskSubsystemRandomWalks(t *testing.T) {
	opts := fairmc.Defaults()
	opts.RandomWalk = true
	opts.MaxExecutions = 200
	opts.Seed = 12
	res := mustCheck(t, minios.DiskSubsystem(minios.DiskConfig{
		Sectors: 3, Clients: 2, ReadsPerClient: 1,
	}), opts)
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("random walk broke the disk stack:\n%s", res.FirstBug.FormatTrace())
		}
		t.Fatalf("divergence: %s", res.Liveness)
	}
}

// mustCheck unwraps the facade's error return; the options in these
// tests are statically valid.
func mustCheck(t *testing.T, prog func(*conc.T), opts fairmc.Options) *fairmc.Result {
	t.Helper()
	res, err := fairmc.Check(prog, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}
