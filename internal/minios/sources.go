package minios

import "embed"

// sources embeds this package's files so the Table 1 experiment can
// report the Singularity model's lines of code (the model lives here,
// not in progs).
//
//go:embed *.go
var sources embed.FS

// SourceLOC returns the total line count of the minios model sources
// (tests excluded).
func SourceLOC() int {
	entries, err := sources.ReadDir(".")
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		if len(name) > 8 && name[len(name)-8:] == "_test.go" {
			continue
		}
		data, err := sources.ReadFile(name)
		if err != nil {
			continue
		}
		for _, b := range data {
			if b == '\n' {
				n++
			}
		}
	}
	return n
}
