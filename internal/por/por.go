// Package por provides the independence oracle for sleep-set partial-
// order reduction.
//
// The paper names partial-order reduction as the natural complement to
// fair scheduling ("Partial-order reduction, however, can be used to
// significantly reduce the set of all fair schedules of fair-
// terminating programs, an interesting avenue of future research") —
// this package implements the classic sleep-set algorithm of
// Godefroid for the *unfair* searches, where two independent
// transitions commute outright. Sleep sets prune redundant
// interleavings (transitions), never states: a DFS with sleep sets
// visits exactly the states the plain DFS visits, in fewer
// executions — a property the tests check.
//
// A move is a thread's pending transition. Two moves are independent
// when they commute and neither affects the other's enabledness; the
// oracle is conservative (dependent when unsure).
package por

import (
	"fairmc/internal/engine"
	"fairmc/internal/tidset"
	"fairmc/internal/wm"
)

// Move identifies one alternative at a state: a thread, its pending
// operation, and (for data choices) the chosen value.
type Move struct {
	// Tid is the thread the move belongs to.
	Tid tidset.Tid
	// Arg is the data choice taken (0 for plain scheduling moves).
	Arg int
	// Info describes the thread's pending operation.
	Info engine.OpInfo
}

// MoveOf builds the Move for alternative alt in the current state.
func MoveOf(e *engine.Engine, alt engine.Alt) Move {
	snap := e.SnapshotThread(alt.Tid)
	return Move{Tid: alt.Tid, Arg: alt.Arg, Info: snap.Pending}
}

// readOnly reports operations that never modify shared state.
func readOnly(kind string) bool {
	switch kind {
	case "load", "any.load", "arr.get":
		return true
	}
	return false
}

// localOnly reports operations with no effect on shared state or on
// other threads' enabledness (valid only under unfair scheduling,
// where yields carry no scheduler state).
func localOnly(kind string) bool {
	switch kind {
	case "yield", "sleep", "choose":
		return true
	}
	return false
}

// lifecycleTarget reports whether the move is a thread-lifecycle
// operation (spawn/join/start) and which thread it concerns: the
// spawned/joined thread, or the starting thread itself.
func lifecycleTarget(m Move) (tidset.Tid, bool) {
	switch m.Info.Kind {
	case "spawn", "join":
		return tidset.Tid(m.Info.Aux), true
	case "start":
		return m.Tid, true
	}
	return tidset.None, false
}

// tidAlloc reports moves that allocate a thread id as a side effect: a
// thread's first TSO store creates its store buffer and registers the
// buffer's flush agent. Like the lifecycle operations, two of these
// never commute (ids are assigned in execution order), and neither do
// a tid-allocating move and a lifecycle move.
func tidAlloc(kind string) bool { return kind == "wm.buf1" }

// isWM reports operations of the weak-memory subsystem (internal/wm).
// All wm ops on one Memory share its ObjID; variable- and buffer-level
// granularity lives in wmIndependent.
func isWM(kind string) bool {
	switch kind {
	case "wm.read", "wm.write", "wm.buf", "wm.buf1", "wm.flush", "wm.fence", "wm.drain":
		return true
	}
	return false
}

// wmVar returns the variable a wm memory access concerns.
func wmVar(m Move) int64 { return m.Info.Aux }

// flushParts decodes a "wm.flush" move: the buffer's owning thread and
// the variable the next flush writes (ok = false for an empty buffer,
// which cannot be scheduled but can linger as a stale sleep-set entry).
func flushParts(m Move) (owner tidset.Tid, v int64, ok bool) {
	owner = tidset.Tid(m.Info.Aux >> wm.AuxOwnerShift)
	hv := m.Info.Aux & (1<<wm.AuxOwnerShift - 1)
	return owner, hv - 1, hv != 0
}

// wmIndependent is the independence oracle for two wm moves on the
// same Memory (different threads). The TSO structure gives finer
// commutativity than plain shared variables: a buffered store touches
// only the issuing thread's private buffer, so it is invisible to — and
// independent of — everything except its own buffer's flushes, while a
// flush writes memory on the owner's behalf and so conflicts like a
// store by the owner would. Conservative: dependent when unsure.
func wmIndependent(a, b Move) bool {
	ka, kb := a.Info.Kind, b.Info.Kind
	// Drain observes every buffer: conservatively dependent with all
	// wm moves.
	if ka == "wm.drain" || kb == "wm.drain" {
		return false
	}
	if ka == "wm.flush" {
		return flushIndependent(a, b)
	}
	if kb == "wm.flush" {
		return flushIndependent(b, a)
	}
	switch {
	case ka == "wm.read" && kb == "wm.read":
		return true
	case ka == "wm.fence" || kb == "wm.fence":
		// A fence waits on its own buffer only; the moves that change
		// that buffer are the owner's stores (same tid, already
		// dependent) and its flushes (handled above).
		return true
	case ka == "wm.buf" || ka == "wm.buf1":
		// A buffered store is invisible outside its own buffer; the
		// other move is by a different thread (same-tid pairs never get
		// here) and is not this buffer's flush.
		return kb == "wm.buf" || kb == "wm.buf1" || kb == "wm.read" || kb == "wm.write"
	case kb == "wm.buf" || kb == "wm.buf1":
		return wmIndependent(b, a)
	case ka == "wm.write" && kb == "wm.write":
		return wmVar(a) != wmVar(b)
	case ka == "wm.write" || kb == "wm.write":
		// write vs read: conflict on the same variable.
		return wmVar(a) != wmVar(b)
	}
	return false
}

// flushIndependent reports whether flush move f commutes with wm move
// o (f is "wm.flush"; o is any wm move except drain).
func flushIndependent(f, o Move) bool {
	owner, v, ok := flushParts(f)
	if !ok {
		// Empty-buffer flush: stale, schedulable never; treat as
		// dependent so it wakes (and is dropped) promptly.
		return false
	}
	// The owner's own moves reorder buffer content, enable fences, and
	// race the head entry: dependent.
	if o.Tid == owner {
		return false
	}
	switch o.Info.Kind {
	case "wm.flush":
		oOwner, ov, oOK := flushParts(o)
		if !oOK {
			return false
		}
		// Two flushes of different buffers commute unless both write
		// the same variable next.
		return oOwner != owner && ov != v
	case "wm.read", "wm.write":
		// The flush writes v to memory: memory accesses to other
		// variables commute.
		return wmVar(o) != v
	case "wm.buf", "wm.buf1":
		// Another thread's buffered store touches only that thread's
		// private buffer.
		return true
	case "wm.fence":
		// A fence waits on its own buffer; this flush drains another's.
		return true
	}
	return false
}

// Independent reports whether the two moves commute: executing them in
// either order reaches a behaviorally identical state, and neither
// enables or disables the other.
//
// Lifecycle operations are dependent with each other (thread ids are
// allocated in creation order) and with any move of the thread they
// concern (spawn enables its start; exit enables its join), and
// commute with everything else. A thread's start transition runs its
// prefix to the first scheduling point; prefixes that create shared
// objects commute behaviorally but permute raw object ids, which only
// matters for fingerprint identity — and the fingerprint-based modes
// (StatefulPrune) do not combine with the reductions using this
// oracle.
func Independent(a, b Move) bool {
	if a.Tid == b.Tid {
		return false
	}
	aAlloc := tidAlloc(a.Info.Kind)
	bAlloc := tidAlloc(b.Info.Kind)
	ta, la := lifecycleTarget(a)
	tb, lb := lifecycleTarget(b)
	// Any two id-allocating transitions (lifecycle ops and first TSO
	// stores) are mutually dependent: reordering them permutes thread
	// ids.
	if (la || aAlloc) && (lb || bAlloc) {
		return false
	}
	switch {
	case la:
		return b.Tid != ta
	case lb:
		return a.Tid != tb
	}
	if localOnly(a.Info.Kind) || localOnly(b.Info.Kind) {
		return true
	}
	if a.Info.Obj != b.Info.Obj {
		return true
	}
	// Same object: reads commute; array accesses to different
	// elements commute (Aux carries the element index); weak-memory
	// moves get the store/flush/load race semantics of wmIndependent.
	if readOnly(a.Info.Kind) && readOnly(b.Info.Kind) {
		return true
	}
	if isArrayOp(a.Info.Kind) && isArrayOp(b.Info.Kind) && a.Info.Aux != b.Info.Aux {
		return true
	}
	if isWM(a.Info.Kind) && isWM(b.Info.Kind) {
		return wmIndependent(a, b)
	}
	return false
}

func isArrayOp(kind string) bool {
	return kind == "arr.get" || kind == "arr.set"
}

// Set is a sleep set: the moves proven redundant at the current state.
// The zero value is an empty set.
type Set struct {
	moves []Move
}

// Len returns the number of sleeping moves.
func (s *Set) Len() int { return len(s.moves) }

// Clone copies the set.
func (s *Set) Clone() Set {
	return Set{moves: append([]Move(nil), s.moves...)}
}

// Add puts a move to sleep.
func (s *Set) Add(m Move) {
	s.moves = append(s.moves, m)
}

// Contains reports whether the alternative is asleep in the current
// state: a sleeping move matches when the thread's pending operation
// is still the one that went to sleep. A stale entry (the thread has
// moved on or exited) is dropped.
func (s *Set) Contains(e *engine.Engine, alt engine.Alt) bool {
	cur := e.SnapshotThread(alt.Tid)
	for i := 0; i < len(s.moves); {
		m := s.moves[i]
		if m.Tid != alt.Tid {
			i++
			continue
		}
		if !cur.Live || cur.Pending != m.Info {
			// Stale: the thread's move changed; wake it.
			s.moves = append(s.moves[:i], s.moves[i+1:]...)
			continue
		}
		if m.Arg == alt.Arg {
			return true
		}
		i++
	}
	return false
}

// Step advances the sleep set across the execution of chosen: moves
// dependent on it wake up (are dropped).
func (s *Set) Step(chosen Move) {
	out := s.moves[:0]
	for _, m := range s.moves {
		if Independent(m, chosen) {
			out = append(out, m)
		}
	}
	s.moves = out
}
