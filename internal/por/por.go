// Package por provides the independence oracle for sleep-set partial-
// order reduction.
//
// The paper names partial-order reduction as the natural complement to
// fair scheduling ("Partial-order reduction, however, can be used to
// significantly reduce the set of all fair schedules of fair-
// terminating programs, an interesting avenue of future research") —
// this package implements the classic sleep-set algorithm of
// Godefroid for the *unfair* searches, where two independent
// transitions commute outright. Sleep sets prune redundant
// interleavings (transitions), never states: a DFS with sleep sets
// visits exactly the states the plain DFS visits, in fewer
// executions — a property the tests check.
//
// A move is a thread's pending transition. Two moves are independent
// when they commute and neither affects the other's enabledness; the
// oracle is conservative (dependent when unsure).
package por

import (
	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// Move identifies one alternative at a state: a thread, its pending
// operation, and (for data choices) the chosen value.
type Move struct {
	// Tid is the thread the move belongs to.
	Tid tidset.Tid
	// Arg is the data choice taken (0 for plain scheduling moves).
	Arg int
	// Info describes the thread's pending operation.
	Info engine.OpInfo
}

// MoveOf builds the Move for alternative alt in the current state.
func MoveOf(e *engine.Engine, alt engine.Alt) Move {
	snap := e.SnapshotThread(alt.Tid)
	return Move{Tid: alt.Tid, Arg: alt.Arg, Info: snap.Pending}
}

// readOnly reports operations that never modify shared state.
func readOnly(kind string) bool {
	switch kind {
	case "load", "any.load", "arr.get":
		return true
	}
	return false
}

// localOnly reports operations with no effect on shared state or on
// other threads' enabledness (valid only under unfair scheduling,
// where yields carry no scheduler state).
func localOnly(kind string) bool {
	switch kind {
	case "yield", "sleep", "choose":
		return true
	}
	return false
}

// lifecycleTarget reports whether the move is a thread-lifecycle
// operation (spawn/join/start) and which thread it concerns: the
// spawned/joined thread, or the starting thread itself.
func lifecycleTarget(m Move) (tidset.Tid, bool) {
	switch m.Info.Kind {
	case "spawn", "join":
		return tidset.Tid(m.Info.Aux), true
	case "start":
		return m.Tid, true
	}
	return tidset.None, false
}

// Independent reports whether the two moves commute: executing them in
// either order reaches a behaviorally identical state, and neither
// enables or disables the other.
//
// Lifecycle operations are dependent with each other (thread ids are
// allocated in creation order) and with any move of the thread they
// concern (spawn enables its start; exit enables its join), and
// commute with everything else. A thread's start transition runs its
// prefix to the first scheduling point; prefixes that create shared
// objects commute behaviorally but permute raw object ids, which only
// matters for fingerprint identity — and the fingerprint-based modes
// (StatefulPrune) do not combine with the reductions using this
// oracle.
func Independent(a, b Move) bool {
	if a.Tid == b.Tid {
		return false
	}
	ta, la := lifecycleTarget(a)
	tb, lb := lifecycleTarget(b)
	switch {
	case la && lb:
		return false
	case la:
		return b.Tid != ta
	case lb:
		return a.Tid != tb
	}
	if localOnly(a.Info.Kind) || localOnly(b.Info.Kind) {
		return true
	}
	if a.Info.Obj != b.Info.Obj {
		return true
	}
	// Same object: reads commute; array accesses to different
	// elements commute (Aux carries the element index).
	if readOnly(a.Info.Kind) && readOnly(b.Info.Kind) {
		return true
	}
	if isArrayOp(a.Info.Kind) && isArrayOp(b.Info.Kind) && a.Info.Aux != b.Info.Aux {
		return true
	}
	return false
}

func isArrayOp(kind string) bool {
	return kind == "arr.get" || kind == "arr.set"
}

// Set is a sleep set: the moves proven redundant at the current state.
// The zero value is an empty set.
type Set struct {
	moves []Move
}

// Len returns the number of sleeping moves.
func (s *Set) Len() int { return len(s.moves) }

// Clone copies the set.
func (s *Set) Clone() Set {
	return Set{moves: append([]Move(nil), s.moves...)}
}

// Add puts a move to sleep.
func (s *Set) Add(m Move) {
	s.moves = append(s.moves, m)
}

// Contains reports whether the alternative is asleep in the current
// state: a sleeping move matches when the thread's pending operation
// is still the one that went to sleep. A stale entry (the thread has
// moved on or exited) is dropped.
func (s *Set) Contains(e *engine.Engine, alt engine.Alt) bool {
	cur := e.SnapshotThread(alt.Tid)
	for i := 0; i < len(s.moves); {
		m := s.moves[i]
		if m.Tid != alt.Tid {
			i++
			continue
		}
		if !cur.Live || cur.Pending != m.Info {
			// Stale: the thread's move changed; wake it.
			s.moves = append(s.moves[:i], s.moves[i+1:]...)
			continue
		}
		if m.Arg == alt.Arg {
			return true
		}
		i++
	}
	return false
}

// Step advances the sleep set across the execution of chosen: moves
// dependent on it wake up (are dropped).
func (s *Set) Step(chosen Move) {
	out := s.moves[:0]
	for _, m := range s.moves {
		if Independent(m, chosen) {
			out = append(out, m)
		}
	}
	s.moves = out
}
