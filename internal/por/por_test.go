package por_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/por"
	"fairmc/internal/search"
	"fairmc/internal/state"
	"fairmc/internal/syncmodel"
	"fairmc/internal/tidset"
)

func mv(tid int, kind string, obj int, aux int64) por.Move {
	return por.Move{
		Tid:  tidset.Tid(tid),
		Arg:  -1,
		Info: engine.OpInfo{Kind: kind, Obj: engine.ObjID(obj), Aux: aux},
	}
}

func TestIndependenceOracle(t *testing.T) {
	cases := []struct {
		name string
		a, b por.Move
		want bool
	}{
		{"same thread", mv(1, "load", 0, 0), mv(1, "store", 1, 0), false},
		{"different objects", mv(1, "store", 0, 0), mv(2, "store", 1, 0), true},
		{"same object writes", mv(1, "store", 0, 0), mv(2, "store", 0, 0), false},
		{"same object reads", mv(1, "load", 0, 0), mv(2, "load", 0, 0), true},
		{"read vs write same object", mv(1, "load", 0, 0), mv(2, "store", 0, 0), false},
		{"lock vs lock same mutex", mv(1, "lock", 3, 0), mv(2, "lock", 3, 0), false},
		{"lock vs unlock different mutex", mv(1, "lock", 3, 0), mv(2, "unlock", 4, 0), true},
		{"yield vs anything", mv(1, "yield", -1, 0), mv(2, "store", 0, 0), true},
		{"two yields", mv(1, "yield", -1, 0), mv(2, "sleep", -1, 1), true},
		{"spawn vs its child's op", mv(1, "spawn", -1, 3), mv(3, "load", 0, 0), false},
		{"spawn vs unrelated op", mv(1, "spawn", -1, 3), mv(2, "load", 0, 0), true},
		{"two lifecycle ops", mv(1, "spawn", -1, 3), mv(2, "join", -1, 4), false},
		{"join vs its target's op", mv(1, "join", -1, 2), mv(2, "yield", -1, 0), false},
		{"join vs unrelated op", mv(1, "join", -1, 2), mv(3, "store", 0, 0), true},
		{"start vs unrelated op", mv(3, "start", -1, 0), mv(2, "store", 0, 0), true},
		{"array disjoint elements", mv(1, "arr.set", 5, 0), mv(2, "arr.set", 5, 1), true},
		{"array same element", mv(1, "arr.set", 5, 0), mv(2, "arr.get", 5, 0), false},
	}
	for _, c := range cases {
		if got := por.Independent(c.a, c.b); got != c.want {
			t.Errorf("%s: Independent = %v, want %v", c.name, got, c.want)
		}
		// Independence is symmetric.
		if got := por.Independent(c.b, c.a); got != c.want {
			t.Errorf("%s (swapped): Independent = %v, want %v", c.name, got, c.want)
		}
	}
}

// parallelWriters: n threads writing disjoint variables — maximal
// independence, so sleep sets collapse the n! orderings drastically.
func parallelWriters(n int) func(*engine.T) {
	return func(t *engine.T) {
		vars := make([]*syncmodel.IntVar, n)
		for i := range vars {
			vars[i] = syncmodel.NewIntVar(t, "v", 0)
		}
		wg := syncmodel.NewWaitGroup(t, "wg", int64(n))
		for i := 0; i < n; i++ {
			i := i
			t.Go("w", func(t *engine.T) {
				vars[i].Store(t, 1)
				vars[i].Store(t, 2)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
}

// explore runs an unfair bounded DFS with or without sleep sets and
// returns the report plus state coverage.
func explore(t *testing.T, prog func(*engine.T), sleep bool) (*search.Report, *state.Coverage) {
	t.Helper()
	cov := state.NewCoverage()
	rep := search.Explore(prog, search.Options{
		Fair:         false,
		ContextBound: -1,
		MaxSteps:     10000,
		Monitor:      cov,
		SleepSets:    sleep,
	})
	if !rep.Exhausted {
		t.Fatalf("search not exhausted: %+v", rep)
	}
	return rep, cov
}

func TestSleepSetsPreserveStatesAndReduceExecutions(t *testing.T) {
	for _, n := range []int{2, 3} {
		prog := parallelWriters(n)
		plain, plainCov := explore(t, prog, false)
		slept, sleptCov := explore(t, prog, true)
		if plainCov.Count() != sleptCov.Count() {
			t.Fatalf("n=%d: state coverage differs: plain %d, sleep %d",
				n, plainCov.Count(), sleptCov.Count())
		}
		if slept.Executions >= plain.Executions {
			t.Fatalf("n=%d: sleep sets did not reduce executions: %d vs %d",
				n, slept.Executions, plain.Executions)
		}
		if slept.PrunedSleep == 0 {
			t.Fatalf("n=%d: no sleep pruning recorded", n)
		}
		t.Logf("n=%d: executions %d -> %d (%d sleep-pruned), states %d",
			n, plain.Executions, slept.Executions, slept.PrunedSleep, plainCov.Count())
	}
}

func TestSleepSetsPreserveBugDetection(t *testing.T) {
	racy := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			t.Go("inc", func(t *engine.T) {
				v := x.Load(t)
				x.Store(t, v+1)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(x.Load(t) == 2, "lost update")
	}
	rep := search.Explore(racy, search.Options{
		Fair:         false,
		ContextBound: -1,
		MaxSteps:     10000,
		SleepSets:    true,
	})
	if rep.FirstBug == nil {
		t.Fatal("sleep-set search missed the lost-update bug")
	}
}

func TestSleepSetsPreserveDeadlockDetection(t *testing.T) {
	abba := func(t *engine.T) {
		a := syncmodel.NewMutex(t, "a")
		b := syncmodel.NewMutex(t, "b")
		t.Go("ab", func(t *engine.T) {
			a.Lock(t)
			b.Lock(t)
			b.Unlock(t)
			a.Unlock(t)
		})
		t.Go("ba", func(t *engine.T) {
			b.Lock(t)
			a.Lock(t)
			a.Unlock(t)
			b.Unlock(t)
		})
	}
	rep := search.Explore(abba, search.Options{
		Fair:         false,
		ContextBound: -1,
		MaxSteps:     10000,
		SleepSets:    true,
	})
	if rep.FirstBug == nil || rep.FirstBug.Outcome != engine.Deadlock {
		t.Fatalf("sleep-set search missed the deadlock: %+v", rep)
	}
}

func TestSleepSetsWithLocksPreserveCoverage(t *testing.T) {
	// Dependent operations (same lock) mixed with independent ones.
	prog := func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		x := syncmodel.NewIntVar(t, "x", 0)
		y := syncmodel.NewIntVar(t, "y", 0)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		t.Go("a", func(t *engine.T) {
			m.Lock(t)
			x.Add(t, 1)
			m.Unlock(t)
			wg.Done(t)
		})
		t.Go("b", func(t *engine.T) {
			m.Lock(t)
			y.Add(t, 1)
			m.Unlock(t)
			wg.Done(t)
		})
		wg.Wait(t)
	}
	plain, plainCov := explore(t, prog, false)
	slept, sleptCov := explore(t, prog, true)
	if plainCov.Count() != sleptCov.Count() {
		t.Fatalf("coverage differs: %d vs %d", plainCov.Count(), sleptCov.Count())
	}
	if slept.Executions > plain.Executions {
		t.Fatalf("sleep sets increased executions: %d vs %d", slept.Executions, plain.Executions)
	}
}

func TestSleepSetsWithFairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for SleepSets+Fair")
		}
	}()
	search.Explore(parallelWriters(2), search.Options{Fair: true, SleepSets: true})
}
