package por

// This file defines the serializable work unit the parallel DPOR
// driver (internal/search) fans out, following the parsimonious-
// optimal formulation: instead of mutating shared backtrack/sleep-set
// state on a DFS stack, every detected race yields one self-contained
// Unit — a prefix of scheduling choices plus the race-reversal
// obligation that spawned it. Units carry everything a worker needs
// (schedule, conformance digests, initial sleep entries), so they can
// be executed by any process in any order; Analyze is the pure
// race-detection function both the sequential and the distributed
// drivers share.

import "fairmc/internal/engine"

// Unit is one self-contained DPOR work unit: a schedule prefix ending
// in the race reversal that spawned it. A worker replays Sched
// (verifying Digs), then extends the execution with leftmost-awake
// choices until it ends; the races found along the trace become child
// units. The zero Unit is the root: an empty prefix whose run is the
// search's first execution.
//
// Units are JSON-serializable by design — they are what checkpoints
// (DporState) and distributed shards (Shard.Unit) carry.
type Unit struct {
	// Path identifies the unit's position in the schedule tree:
	// Path[i] is the index of the chosen alternative within the
	// context-bound-filtered candidate list at step i. Paths are the
	// dedup keys of the merge's seen set; they deliberately index the
	// budget-filtered list, not the sleep-filtered one, because sleep
	// state differs between units visiting the same state while the
	// preemption-budget filter does not.
	Path []int `json:"path,omitempty"`
	// Sched is the concrete alternative chosen at each Path step.
	Sched []engine.Alt `json:"sched,omitempty"`
	// Digs are the conformance digests recorded when each Path step
	// was first explored; the replay verifies against them. Empty when
	// conformance is disabled.
	Digs []engine.StepDigest `json:"digs,omitempty"`
	// Sleep[i] holds the moves to install into the live sleep set
	// before step i executes: the already-covered siblings at that
	// state. Populated only when sleep sets are enabled; entries past
	// the unit's branch point are nil.
	Sleep [][]Move `json:"sleep,omitempty"`
}

// ExecStep is the per-step record a unit run produces for Analyze: the
// executed move and the candidate landscape it was chosen from.
type ExecStep struct {
	// Chosen is the move that executed at this step.
	Chosen Move
	// Alts is the context-bound-filtered candidate list at the step's
	// state (an owned copy, not the engine's reused buffer).
	Alts []engine.Alt
	// Moves[i] is the Move of Alts[i] at that state.
	Moves []Move
	// Awake[i] reports whether Alts[i] was awake in the unit's live
	// sleep set when the step executed (all true without sleep sets).
	Awake []bool
}

// Proposal is one race-reversal obligation found by Analyze: explore
// candidate index Idx (into the step's filtered candidate list) at
// step Pos instead of what this unit chose there.
type Proposal struct {
	// Pos is the 0-based step the reversal branches at.
	Pos int
	// Idx is the index of the alternative to take at Pos, within the
	// context-bound-filtered candidate list recorded for that step.
	Idx int
}

// Analyze runs the conservative race detection of Flanagan/Godefroid-
// style DPOR over one unit's executed trace and returns the reversal
// proposals, deduplicated in discovery order.
//
// branch is the index of the unit's last replayed step (len(Sched)-1;
// -1 for the root unit). Only pairs whose later step q is at or past
// the branch are analyzed: every pair with q < branch occurred
// identically in the parent's trace and was analyzed when the parent
// merged, so each racing pair is analyzed exactly once globally.
//
// For each dependent pair (p, q) of distinct threads, the proposals
// are every awake alternative of q's thread at step p; if that thread
// has no awake alternative there, conservatively every awake
// alternative at p (the classic fallback when the racing thread was
// not directly schedulable at the earlier state).
func Analyze(branch int, steps []ExecStep) []Proposal {
	var out []Proposal
	seen := make(map[[2]int]bool)
	propose := func(pos, idx int) {
		key := [2]int{pos, idx}
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Proposal{Pos: pos, Idx: idx})
	}
	lo := branch
	if lo < 0 {
		lo = 0
	}
	for q := lo; q < len(steps); q++ {
		mq := steps[q].Chosen
		for p := q - 1; p >= 0; p-- {
			mp := steps[p].Chosen
			if mp.Tid == mq.Tid || Independent(mp, mq) {
				continue
			}
			st := &steps[p]
			added := false
			for i := range st.Alts {
				if st.Moves[i].Tid == mq.Tid && st.Awake[i] {
					propose(p, i)
					added = true
				}
			}
			if !added {
				for i := range st.Alts {
					if st.Awake[i] {
						propose(p, i)
					}
				}
			}
		}
	}
	return out
}
