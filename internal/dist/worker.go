package dist

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"fairmc/internal/dist/transport"
	"fairmc/internal/engine"
	"fairmc/internal/fsx"
	"fairmc/internal/obs"
	"fairmc/internal/search"
)

// ErrSpecMismatch reports that the coordinator's options hash does not
// match the options this worker rebuilt from the spec: version skew or
// a worker pointed at the wrong coordinator. The CLI maps it to the
// usage exit status.
var ErrSpecMismatch = errors.New("dist: coordinator options hash does not match this worker's build")

// errUnreachable marks a session that died because the coordinator
// stopped answering (breaker open or repeated final call failures); the
// outer RunWorker loop responds by rejoining within the join budget.
var errUnreachable = errors.New("dist: coordinator unreachable")

// DefaultJoinTimeout bounds the initial join and each rejoin window.
const DefaultJoinTimeout = 30 * time.Second

// Per-endpoint per-attempt deadlines: a join probe or heartbeat should
// fail fast, a result upload may carry megabytes of report.
var workerDeadlines = map[string]time.Duration{
	PathJoin:      5 * time.Second,
	PathLease:     10 * time.Second,
	PathHeartbeat: 5 * time.Second,
	PathResult:    60 * time.Second,
}

// eventPostDeadline bounds best-effort event batch uploads.
const eventPostDeadline = 15 * time.Second

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// URL is the coordinator's base URL (e.g. http://host:7171).
	URL string
	// Capacity is how many shards to run concurrently; 0 means 1.
	Capacity int
	// WorkDir holds per-shard checkpoints (so a restarted worker resumes
	// a long stride shard instead of rerunning it) and the result spool
	// (completed shard reports persisted while the coordinator is
	// unreachable, replayed on rejoin); empty disables both.
	WorkDir string
	// Lookup resolves the program name the coordinator sends to the
	// program body (e.g. an adapter around progs.Lookup).
	Lookup func(name string) (func(*engine.T), bool)
	// Metrics, when set, is the worker's live registry; deltas are
	// forwarded to the coordinator with every heartbeat.
	Metrics *obs.Metrics
	// Logf, when set, receives one-line operational logs.
	Logf func(format string, args ...any)
	// Stop, when closed, makes the worker abandon its shards and
	// return nil.
	Stop <-chan struct{}

	// Retry is the backoff policy shared by every coordinator call
	// (join probes, leases, heartbeats, result uploads). A zero value
	// uses transport.DefaultPolicy.
	Retry transport.Policy
	// JoinTimeout bounds the initial join and each rejoin window after
	// the coordinator becomes unreachable; 0 means DefaultJoinTimeout.
	JoinTimeout time.Duration
	// Transport, when set, replaces the underlying HTTP transport —
	// the seam where faultinject.RoundTripper plugs in.
	Transport http.RoundTripper
	// FS, when set, replaces the filesystem used for the result spool —
	// the seam where faultinject.FSInjector plugs in. Nil means the
	// real filesystem.
	FS fsx.FS
}

// hbState is heartbeat bookkeeping that must survive rejoins: the
// metrics baseline only advances when a heartbeat actually lands, so a
// delta that failed to send (or was sent during a partition) is carried
// into the next attempt instead of lost, and the idempotency sequence
// keeps a retried heartbeat from being merged twice.
type hbState struct {
	mu   sync.Mutex
	prev obs.Snapshot
	seq  int
}

// worker is the per-session state of one join: one worker ID, one set
// of leases. RunWorker builds a fresh session after every rejoin.
type worker struct {
	cfg  WorkerConfig
	tc   *transport.Client
	hb   *hbState
	id   string
	spec SearchSpec
	opts search.Options
	prog func(*engine.T)
	ttl  time.Duration

	mu     sync.Mutex
	active map[string]chan struct{} // lease id -> shard stop channel

	events *eventForwarder
	rec    *obs.Recorder

	done chan struct{} // coordinator said the search is over
	once sync.Once
}

// RunWorker joins the coordinator at cfg.URL and runs shards until the
// coordinator reports the search done (returning nil) or cfg.Stop is
// closed (nil). If the coordinator becomes unreachable mid-session the
// worker spools any completed-but-unposted shard reports to -workdir,
// rejoins within cfg.JoinTimeout, replays the spool under its new
// identity, and continues; only an exhausted join budget (or a
// configuration rejection) is an error.
func RunWorker(cfg WorkerConfig) error {
	if cfg.Lookup == nil {
		return errors.New("dist: worker needs a program Lookup")
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = DefaultJoinTimeout
	}
	if cfg.Retry.MaxAttempts == 0 && cfg.Retry.BaseDelay == 0 {
		cfg.Retry = transport.DefaultPolicy(1)
	}
	if cfg.FS == nil {
		cfg.FS = fsx.OS
	}

	breaker := &transport.Breaker{}
	if cfg.Metrics != nil {
		breaker.OnOpen = func() { cfg.Metrics.BreakerOpens.Inc() }
	}
	httpc := &http.Client{} // deadlines are per-endpoint, not global
	if cfg.Transport != nil {
		httpc.Transport = cfg.Transport
	}
	tc := &transport.Client{
		Base:      cfg.URL,
		HTTP:      httpc,
		Policy:    cfg.Retry,
		Deadlines: workerDeadlines,
		Breaker:   breaker,
		Stop:      cfg.Stop,
	}
	if cfg.Metrics != nil {
		tc.OnRetry = func(string, int, error) { cfg.Metrics.DistRetries.Inc() }
	}

	hb := &hbState{}
	if cfg.Metrics != nil {
		hb.prev = cfg.Metrics.Snapshot()
	}

	rejoined := false
	for {
		wk, err := startSession(cfg, tc, hb)
		if err != nil {
			if rejoined {
				// The spool (if any) stays on disk for the next worker
				// pointed at this workdir.
				cfg.Logf("dist: giving up rejoin: %v", err)
			}
			return err
		}
		err = wk.runSession()
		if err == nil {
			return nil // done or stopped
		}
		if !errors.Is(err, errUnreachable) {
			return err
		}
		if wk.stopped() {
			return nil
		}
		rejoined = true
		cfg.Logf("dist: session %s lost the coordinator; rejoining (budget %s)", wk.id, cfg.JoinTimeout)
	}
}

// startSession joins (within the join budget), validates the spec, and
// replays any spooled results under the new worker identity.
func startSession(cfg WorkerConfig, tc *transport.Client, hb *hbState) (*worker, error) {
	join, err := joinLoop(cfg, tc)
	if err != nil {
		return nil, err
	}
	if tc.Breaker != nil {
		// The join (which bypasses the breaker) just proved the
		// coordinator reachable; don't fail-fast the spool replay.
		tc.Breaker.Reset()
	}
	wk := &worker{
		cfg:    cfg,
		tc:     tc,
		hb:     hb,
		id:     join.WorkerID,
		spec:   join.Spec,
		active: map[string]chan struct{}{},
		done:   make(chan struct{}),
	}
	wk.ttl = time.Duration(join.LeaseTTLMS) * time.Millisecond
	if wk.ttl <= 0 {
		wk.ttl = DefaultLeaseTTL
	}
	wk.opts = join.Spec.Options()
	if got := search.OptionsHash(&wk.opts); got != join.OptionsHash {
		return nil, fmt.Errorf("%w (coordinator %#x, worker %#x)", ErrSpecMismatch, join.OptionsHash, got)
	}
	prog, ok := cfg.Lookup(join.Spec.Program)
	if !ok {
		return nil, fmt.Errorf("dist: coordinator wants program %q, which this worker does not have", join.Spec.Program)
	}
	wk.prog = prog
	wk.opts.Metrics = cfg.Metrics
	if join.WantEvents {
		wk.events = newEventForwarder(wk.cfg.Transport, cfg.URL+PathEvents)
		// Parallel shard goroutines emit in bursts; the recorder's
		// bounded queue keeps emission non-blocking end to end.
		wk.rec = obs.NewRecorder(wk.events, 1<<14)
		wk.opts.EventSink = wk.rec
	}
	cfg.Logf("dist: joined %s as %s: program %s, %d shards (%s), lease TTL %s",
		cfg.URL, wk.id, join.Spec.Program, join.ShardCount, join.Strategy, wk.ttl)
	wk.replaySpool(join.OptionsHash)
	return wk, nil
}

// joinLoop registers with the coordinator, retrying under the shared
// backoff policy until the join budget runs out (the coordinator may
// still be binding its listener, or a partition may be healing).
func joinLoop(cfg WorkerConfig, tc *transport.Client) (*JoinResponse, error) {
	deadline := time.Now().Add(cfg.JoinTimeout)
	var lastErr error
	for attempt := 1; ; attempt++ {
		if isStopped(cfg.Stop) {
			return nil, errors.New("dist: stopped before joining")
		}
		join := &JoinResponse{}
		// Single attempt per call: the loop owns the backoff, and the
		// breaker is bypassed — a join IS the reachability probe.
		lastErr = tc.PostJSON(PathJoin, JoinRequest{Capacity: cfg.Capacity}, join,
			transport.Call{NoBreaker: true, MaxAttempts: 1})
		if lastErr == nil {
			return join, nil
		}
		if !transport.Classify(lastErr) {
			return nil, fmt.Errorf("dist: join rejected: %w", lastErr)
		}
		backoff := cfg.Retry.Backoff(PathJoin, attempt)
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("dist: coordinator %s unreachable after %s: %w",
				cfg.URL, cfg.JoinTimeout, lastErr)
		}
		if !sleepStop(backoff, cfg.Stop) {
			return nil, errors.New("dist: stopped before joining")
		}
	}
}

func isStopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// sleepStop pauses for d, cut short (returning false) by stop.
func sleepStop(d time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	if stop == nil {
		<-t.C
		return true
	}
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// replaySpool posts results spooled by a previous session (or a
// previous worker process sharing this workdir) so a coordinator
// restart or partition loses zero completed executions. Entries for a
// different search are left alone; replayed entries are deleted once
// the coordinator acknowledges them — whether accepted or already
// decided elsewhere.
func (wk *worker) replaySpool(optionsHash uint64) {
	if wk.cfg.WorkDir == "" {
		return
	}
	entries, corrupt, skipped, err := spoolList(wk.cfg.FS, wk.cfg.WorkDir, optionsHash, wk.spec.Program)
	if err != nil {
		wk.cfg.Logf("dist: scanning spool: %v", err)
		return
	}
	for _, msg := range skipped {
		wk.cfg.Logf("dist: spool: skipping %s", msg)
	}
	// A corrupt entry (torn write or bit rot caught by the CRC footer)
	// is not replayable and must not fail the whole replay: surface it
	// to the coordinator as an advisory WorkerFailure — no lease, no
	// attempt charged, no worker exclusion — then discard the file so
	// it is reported once, not on every rejoin.
	for _, bad := range corrupt {
		wk.cfg.Logf("dist: spool: corrupt entry %s (%s)", bad.Name, bad.Reason)
		req := ResultRequest{
			WorkerID: wk.id,
			Shard:    bad.Shard,
			Failure:  fmt.Sprintf("corrupt spool entry %s: %s", bad.Name, bad.Reason),
		}
		key := fmt.Sprintf("res-%s-spoolbad-%s", wk.id, bad.Name)
		if err := wk.tc.PostJSON(PathResult, req, &ResultResponse{}, transport.Call{Key: key}); err != nil {
			wk.cfg.Logf("dist: reporting corrupt spool entry %s: %v", bad.Name, err)
			continue // keep the file; a later session re-reports
		}
		if bad.Shard >= 0 {
			if rerr := spoolRemove(wk.cfg.FS, wk.cfg.WorkDir, bad.Shard); rerr != nil {
				wk.cfg.Logf("dist: removing corrupt spool entry %s: %v", bad.Name, rerr)
			}
		}
	}
	for _, e := range entries {
		resp := &ResultResponse{}
		req := ResultRequest{WorkerID: wk.id, LeaseID: "spool-replay", Shard: e.Shard, Report: e.Report}
		key := fmt.Sprintf("res-%s-spool-%d", wk.id, e.Shard)
		if err := wk.tc.PostJSON(PathResult, req, resp, transport.Call{Key: key}); err != nil {
			wk.cfg.Logf("dist: replaying spooled shard %d: %v", e.Shard, err)
			continue // still spooled; a later session retries
		}
		if rerr := spoolRemove(wk.cfg.FS, wk.cfg.WorkDir, e.Shard); rerr != nil {
			wk.cfg.Logf("dist: removing spooled shard %d: %v", e.Shard, rerr)
		}
		wk.cfg.Logf("dist: replayed spooled shard %d (accepted=%v)", e.Shard, resp.Accepted)
		if resp.Done {
			wk.finish()
		}
	}
}

// runSession runs shard loops and heartbeats until done, stop, or the
// coordinator becomes unreachable (errUnreachable).
func (wk *worker) runSession() error {
	hbDone := make(chan struct{})
	go wk.heartbeatLoop(hbDone)

	var wg sync.WaitGroup
	errs := make(chan error, wk.cfg.Capacity)
	for i := 0; i < wk.cfg.Capacity; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- wk.shardLoop()
		}()
	}
	wg.Wait()
	wk.finish()
	close(hbDone)
	if wk.rec != nil {
		wk.rec.Close()
		wk.events.Flush()
	}
	// Final telemetry flush so short-lived work is not lost between
	// heartbeats (skipped when the coordinator is already gone).
	var sessionErr error
	for i := 0; i < wk.cfg.Capacity; i++ {
		if err := <-errs; err != nil && sessionErr == nil {
			sessionErr = err
		}
	}
	if sessionErr == nil {
		wk.heartbeat(nil)
	}
	return sessionErr
}

// finish marks the worker as done (idempotent).
func (wk *worker) finish() { wk.once.Do(func() { close(wk.done) }) }

func (wk *worker) stopped() bool { return isStopped(wk.cfg.Stop) }

// heartbeatLoop extends leases and forwards telemetry until the worker
// finishes.
func (wk *worker) heartbeatLoop(stop <-chan struct{}) {
	iv := wk.ttl / 3
	if iv < 20*time.Millisecond {
		iv = 20 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-wk.done:
			return
		case <-t.C:
			wk.heartbeat(nil)
		}
	}
}

// heartbeat posts one heartbeat; extra lease ids (e.g. a lease just
// granted) can be included before the tracking map sees them. Each
// heartbeat carries a fresh idempotency key so a duplicated delivery
// merges its metrics delta exactly once, and the delta baseline only
// advances when the post succeeds.
func (wk *worker) heartbeat(extra []string) {
	wk.mu.Lock()
	ids := append([]string(nil), extra...)
	for id := range wk.active {
		ids = append(ids, id)
	}
	wk.mu.Unlock()

	wk.hb.mu.Lock()
	var delta *obs.Snapshot
	var cur obs.Snapshot
	if wk.cfg.Metrics != nil {
		cur = wk.cfg.Metrics.Snapshot()
		d := cur.Sub(wk.hb.prev)
		delta = &d
	}
	wk.hb.seq++
	key := fmt.Sprintf("hb-%s-%d", wk.id, wk.hb.seq)
	resp := &HeartbeatResponse{}
	err := wk.tc.PostJSON(PathHeartbeat,
		HeartbeatRequest{WorkerID: wk.id, LeaseIDs: ids, Metrics: delta}, resp,
		transport.Call{Key: key, MaxAttempts: 2})
	if err == nil && wk.cfg.Metrics != nil {
		wk.hb.prev = cur
	}
	wk.hb.mu.Unlock()

	if err != nil {
		// The final flush often races the coordinator's own exit; a
		// failed heartbeat after done is expected, not noteworthy.
		select {
		case <-wk.done:
		default:
			wk.cfg.Logf("dist: heartbeat: %v", err)
		}
		return
	}
	wk.mu.Lock()
	for _, id := range resp.Cancelled {
		if ch, ok := wk.active[id]; ok {
			close(ch)
			delete(wk.active, id)
		}
	}
	wk.mu.Unlock()
	if resp.Done {
		wk.finish()
	}
}

// shardLoop is one capacity slot: lease, run, post, repeat. It declares
// the coordinator unreachable when the breaker opens or two lease calls
// in a row fail after full retries.
func (wk *worker) shardLoop() error {
	consecutiveErrs := 0
	for {
		if wk.stopped() {
			return nil
		}
		select {
		case <-wk.done:
			return nil
		default:
		}
		resp := &LeaseResponse{}
		err := wk.tc.PostJSON(PathLease, LeaseRequest{WorkerID: wk.id}, resp,
			transport.Call{MaxAttempts: 3})
		if err != nil {
			if errors.Is(err, transport.ErrCircuitOpen) {
				return fmt.Errorf("%w: %v", errUnreachable, err)
			}
			consecutiveErrs++
			if consecutiveErrs >= 2 {
				return fmt.Errorf("%w: %v", errUnreachable, err)
			}
			wk.sleep(wk.cfg.Retry.Backoff(PathLease, consecutiveErrs))
			continue
		}
		consecutiveErrs = 0
		switch resp.Status {
		case LeaseDone:
			wk.finish()
			return nil
		case LeaseWait:
			// Poll briskly: an idle worker is also how completion is
			// observed, and the coordinator only lingers a short grace
			// period after the search finishes.
			iv := wk.ttl / 4
			if iv > 500*time.Millisecond {
				iv = 500 * time.Millisecond
			}
			wk.sleep(iv)
			continue
		case LeaseWork:
			wk.runShard(resp.LeaseID, *resp.Shard)
		default:
			return fmt.Errorf("dist: unknown lease status %q", resp.Status)
		}
	}
}

// sleep waits without outliving a stop or done signal.
func (wk *worker) sleep(d time.Duration) {
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	if wk.cfg.Stop != nil {
		select {
		case <-t.C:
		case <-wk.cfg.Stop:
		case <-wk.done:
		}
		return
	}
	select {
	case <-t.C:
	case <-wk.done:
	}
}

// runShard executes one leased shard and posts the outcome. A panic in
// the program (or the engine) is posted as a structured failure so the
// coordinator can retry the shard elsewhere. A completed report whose
// upload fails outright is spooled to -workdir for replay on rejoin.
func (wk *worker) runShard(leaseID string, sh search.Shard) {
	stop := make(chan struct{})
	wk.mu.Lock()
	wk.active[leaseID] = stop
	wk.mu.Unlock()
	defer func() {
		wk.mu.Lock()
		if _, ok := wk.active[leaseID]; ok {
			delete(wk.active, leaseID)
		}
		wk.mu.Unlock()
	}()

	// The shard must stop when the lease is cancelled OR the whole
	// worker is stopped; fold both into one channel.
	shardStop := stop
	if wk.cfg.Stop != nil {
		merged := make(chan struct{})
		go func() {
			select {
			case <-stop:
			case <-wk.cfg.Stop:
			}
			close(merged)
		}()
		shardStop = merged
	}

	opts := wk.opts
	ckptPath := ""
	if wk.cfg.WorkDir != "" && sh.Prefix == nil && sh.Unit == nil {
		// Per-shard checkpointing (stride shards only: a prefix
		// subtree reruns from scratch, and a DPOR unit is a single
		// execution). A stale or foreign checkpoint is discarded,
		// never trusted.
		ckptPath = filepath.Join(wk.cfg.WorkDir, fmt.Sprintf("shard-%04d.ckpt", sh.Index))
		opts.CheckpointPath = ckptPath
		if ck, err := search.LoadCheckpoint(ckptPath); err == nil {
			if verr := search.ValidateShardResume(&opts, sh, ck); verr == nil {
				opts.Resume = ck
				wk.cfg.Logf("dist: shard %d resuming from %s (execution %d)",
					sh.Index, ckptPath, ck.Counters.Executions)
			} else {
				wk.cfg.Logf("dist: shard %d ignoring checkpoint %s: %v", sh.Index, ckptPath, verr)
				os.Remove(ckptPath)
			}
		}
	}

	var rep *search.Report
	failure := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				failure = fmt.Sprintf("panic: %v\n%s", r, debug.Stack())
			}
		}()
		rep = search.RunShard(wk.prog, opts, sh, shardStop)
	}()

	if failure == "" && rep != nil && rep.Interrupted {
		// Cancelled mid-shard (lease lost or worker stopping): the
		// partial report must not be merged, and the coordinator has
		// already requeued or cut the shard.
		return
	}
	resp := &ResultResponse{}
	req := ResultRequest{WorkerID: wk.id, LeaseID: leaseID, Shard: sh.Index, Report: rep, Failure: failure}
	if failure != "" {
		req.Report = nil
		wk.cfg.Logf("dist: shard %d crashed: %.120s", sh.Index, failure)
	}
	key := fmt.Sprintf("res-%s-%s-%d", wk.id, leaseID, sh.Index)
	if err := wk.tc.PostJSON(PathResult, req, resp, transport.Call{Key: key}); err != nil {
		wk.cfg.Logf("dist: posting shard %d result: %v", sh.Index, err)
		if failure == "" && rep != nil && wk.cfg.WorkDir != "" {
			// The work is done; don't lose it to a dead link. Failure
			// reports are not spooled — lease expiry already requeues
			// the shard elsewhere.
			e := spoolEntry{
				OptionsHash: search.OptionsHash(&wk.opts),
				Program:     wk.spec.Program,
				Shard:       sh.Index,
				Report:      rep,
			}
			if serr := spoolWrite(wk.cfg.FS, wk.cfg.WorkDir, e); serr != nil {
				wk.cfg.Logf("dist: spooling shard %d: %v", sh.Index, serr)
			} else {
				if wk.cfg.Metrics != nil {
					wk.cfg.Metrics.SpooledResults.Inc()
				}
				wk.cfg.Logf("dist: spooled shard %d result for replay", sh.Index)
			}
		}
		return
	}
	if resp.Accepted && failure == "" && ckptPath != "" {
		os.Remove(ckptPath)
	}
	if resp.Done {
		wk.finish()
	}
}

// eventForwarder batches the recorder's JSONL output and posts it to
// the coordinator. Writes are split at line boundaries so interleaved
// worker batches stay line-valid JSONL on the coordinator side. Event
// posts are best-effort telemetry with their own short deadline; they
// never retry.
type eventForwarder struct {
	client *http.Client
	url    string

	mu  sync.Mutex
	buf bytes.Buffer
}

const eventFlushBytes = 64 << 10

func newEventForwarder(rt http.RoundTripper, url string) *eventForwarder {
	return &eventForwarder{
		client: &http.Client{Timeout: eventPostDeadline, Transport: rt},
		url:    url,
	}
}

func (f *eventForwarder) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.buf.Write(p)
	var send []byte
	if f.buf.Len() >= eventFlushBytes {
		send = f.takeLinesLocked()
	}
	f.mu.Unlock()
	f.post(send)
	return len(p), nil
}

// takeLinesLocked cuts the buffer at the last newline and returns the
// complete lines, leaving any partial line buffered.
func (f *eventForwarder) takeLinesLocked() []byte {
	b := f.buf.Bytes()
	cut := bytes.LastIndexByte(b, '\n')
	if cut < 0 {
		return nil
	}
	send := append([]byte(nil), b[:cut+1]...)
	rest := append([]byte(nil), b[cut+1:]...)
	f.buf.Reset()
	f.buf.Write(rest)
	return send
}

// Flush posts everything buffered, including a trailing partial line
// (only possible if the recorder was cut mid-write, which Close
// prevents).
func (f *eventForwarder) Flush() {
	f.mu.Lock()
	send := append([]byte(nil), f.buf.Bytes()...)
	f.buf.Reset()
	f.mu.Unlock()
	f.post(send)
}

func (f *eventForwarder) post(data []byte) {
	if len(data) == 0 {
		return
	}
	resp, err := f.client.Post(f.url, "application/jsonl", bytes.NewReader(data))
	if err != nil {
		return // events are best-effort telemetry
	}
	resp.Body.Close()
}
