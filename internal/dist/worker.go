package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"fairmc/internal/engine"
	"fairmc/internal/obs"
	"fairmc/internal/search"
)

// ErrSpecMismatch reports that the coordinator's options hash does not
// match the options this worker rebuilt from the spec: version skew or
// a worker pointed at the wrong coordinator. The CLI maps it to the
// usage exit status.
var ErrSpecMismatch = errors.New("dist: coordinator options hash does not match this worker's build")

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// URL is the coordinator's base URL (e.g. http://host:7171).
	URL string
	// Capacity is how many shards to run concurrently; 0 means 1.
	Capacity int
	// WorkDir holds per-shard checkpoints so a restarted worker
	// resumes a long stride shard instead of rerunning it; empty
	// disables shard checkpointing.
	WorkDir string
	// Lookup resolves the program name the coordinator sends to the
	// program body (e.g. an adapter around progs.Lookup).
	Lookup func(name string) (func(*engine.T), bool)
	// Metrics, when set, is the worker's live registry; deltas are
	// forwarded to the coordinator with every heartbeat.
	Metrics *obs.Metrics
	// Logf, when set, receives one-line operational logs.
	Logf func(format string, args ...any)
	// Stop, when closed, makes the worker abandon its shards and
	// return nil.
	Stop <-chan struct{}
}

// joinAttempts bounds how long a worker retries an unreachable
// coordinator before giving up (attempts are spaced by joinBackoff).
const (
	joinAttempts = 60
	joinBackoff  = 500 * time.Millisecond
)

// worker is the per-process state of one RunWorker call.
type worker struct {
	cfg    WorkerConfig
	client *http.Client
	id     string
	spec   SearchSpec
	opts   search.Options
	prog   func(*engine.T)
	ttl    time.Duration

	mu       sync.Mutex
	active   map[string]chan struct{} // lease id -> shard stop channel
	prevSnap obs.Snapshot

	events *eventForwarder
	rec    *obs.Recorder

	done chan struct{} // coordinator said the search is over
	once sync.Once
}

// RunWorker joins the coordinator at cfg.URL, runs shards until the
// coordinator reports the search done (returning nil), cfg.Stop is
// closed (nil), or the coordinator becomes unreachable / rejects this
// worker's configuration (error).
func RunWorker(cfg WorkerConfig) error {
	if cfg.Lookup == nil {
		return errors.New("dist: worker needs a program Lookup")
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	wk := &worker{
		cfg:    cfg,
		client: &http.Client{Timeout: 60 * time.Second},
		active: map[string]chan struct{}{},
		done:   make(chan struct{}),
	}
	join, err := wk.join()
	if err != nil {
		return err
	}
	wk.id = join.WorkerID
	wk.spec = join.Spec
	wk.ttl = time.Duration(join.LeaseTTLMS) * time.Millisecond
	if wk.ttl <= 0 {
		wk.ttl = DefaultLeaseTTL
	}
	wk.opts = join.Spec.Options()
	if got := search.OptionsHash(&wk.opts); got != join.OptionsHash {
		return fmt.Errorf("%w (coordinator %#x, worker %#x)", ErrSpecMismatch, join.OptionsHash, got)
	}
	prog, ok := cfg.Lookup(join.Spec.Program)
	if !ok {
		return fmt.Errorf("dist: coordinator wants program %q, which this worker does not have", join.Spec.Program)
	}
	wk.prog = prog
	wk.opts.Metrics = cfg.Metrics
	if cfg.Metrics != nil {
		wk.prevSnap = cfg.Metrics.Snapshot()
	}
	if join.WantEvents {
		wk.events = newEventForwarder(wk.client, cfg.URL+PathEvents)
		// Parallel shard goroutines emit in bursts; the recorder's
		// bounded queue keeps emission non-blocking end to end.
		wk.rec = obs.NewRecorder(wk.events, 1<<14)
		wk.opts.EventSink = wk.rec
	}
	cfg.Logf("dist: joined %s as %s: program %s, %d shards (%s), lease TTL %s",
		cfg.URL, wk.id, join.Spec.Program, join.ShardCount, join.Strategy, wk.ttl)

	hbDone := make(chan struct{})
	go wk.heartbeatLoop(hbDone)

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Capacity)
	for i := 0; i < cfg.Capacity; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- wk.shardLoop()
		}()
	}
	wg.Wait()
	wk.finish()
	close(hbDone)
	if wk.rec != nil {
		wk.rec.Close()
		wk.events.Flush()
	}
	// Final telemetry flush so short-lived work is not lost between
	// heartbeats.
	wk.heartbeat(nil)
	for i := 0; i < cfg.Capacity; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// finish marks the worker as done (idempotent).
func (wk *worker) finish() { wk.once.Do(func() { close(wk.done) }) }

func (wk *worker) stopped() bool {
	if wk.cfg.Stop == nil {
		return false
	}
	select {
	case <-wk.cfg.Stop:
		return true
	default:
		return false
	}
}

// post sends one JSON request and decodes the JSON response into out
// (unless out is nil).
func (wk *worker) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := wk.client.Post(wk.cfg.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("dist: %s returned %s", path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// join registers with the coordinator, retrying while it is
// unreachable (it may still be binding its listener).
func (wk *worker) join() (*JoinResponse, error) {
	var lastErr error
	for attempt := 0; attempt < joinAttempts; attempt++ {
		if wk.stopped() {
			return nil, errors.New("dist: stopped before joining")
		}
		join := &JoinResponse{}
		lastErr = wk.post(PathJoin, JoinRequest{Capacity: wk.cfg.Capacity}, join)
		if lastErr == nil {
			return join, nil
		}
		time.Sleep(joinBackoff)
	}
	return nil, fmt.Errorf("dist: coordinator %s unreachable: %w", wk.cfg.URL, lastErr)
}

// heartbeatLoop extends leases and forwards telemetry until the worker
// finishes.
func (wk *worker) heartbeatLoop(stop <-chan struct{}) {
	iv := wk.ttl / 3
	if iv < 20*time.Millisecond {
		iv = 20 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-wk.done:
			return
		case <-t.C:
			wk.heartbeat(nil)
		}
	}
}

// heartbeat posts one heartbeat; extra lease ids (e.g. a lease just
// granted) can be included before the tracking map sees them.
func (wk *worker) heartbeat(extra []string) {
	wk.mu.Lock()
	ids := append([]string(nil), extra...)
	for id := range wk.active {
		ids = append(ids, id)
	}
	var delta *obs.Snapshot
	if wk.cfg.Metrics != nil {
		cur := wk.cfg.Metrics.Snapshot()
		d := cur.Sub(wk.prevSnap)
		wk.prevSnap = cur
		delta = &d
	}
	wk.mu.Unlock()
	resp := &HeartbeatResponse{}
	if err := wk.post(PathHeartbeat, HeartbeatRequest{WorkerID: wk.id, LeaseIDs: ids, Metrics: delta}, resp); err != nil {
		// The final flush often races the coordinator's own exit; a
		// failed heartbeat after done is expected, not noteworthy.
		select {
		case <-wk.done:
		default:
			wk.cfg.Logf("dist: heartbeat: %v", err)
		}
		return
	}
	wk.mu.Lock()
	for _, id := range resp.Cancelled {
		if ch, ok := wk.active[id]; ok {
			close(ch)
			delete(wk.active, id)
		}
	}
	wk.mu.Unlock()
	if resp.Done {
		wk.finish()
	}
}

// shardLoop is one capacity slot: lease, run, post, repeat.
func (wk *worker) shardLoop() error {
	consecutiveErrs := 0
	for {
		if wk.stopped() {
			return nil
		}
		select {
		case <-wk.done:
			return nil
		default:
		}
		resp := &LeaseResponse{}
		if err := wk.post(PathLease, LeaseRequest{WorkerID: wk.id}, resp); err != nil {
			consecutiveErrs++
			if consecutiveErrs >= joinAttempts {
				return fmt.Errorf("dist: coordinator unreachable: %w", err)
			}
			wk.sleep(joinBackoff)
			continue
		}
		consecutiveErrs = 0
		switch resp.Status {
		case LeaseDone:
			wk.finish()
			return nil
		case LeaseWait:
			// Poll briskly: an idle worker is also how completion is
			// observed, and the coordinator only lingers a short grace
			// period after the search finishes.
			iv := wk.ttl / 4
			if iv > 500*time.Millisecond {
				iv = 500 * time.Millisecond
			}
			wk.sleep(iv)
			continue
		case LeaseWork:
			wk.runShard(resp.LeaseID, *resp.Shard)
		default:
			return fmt.Errorf("dist: unknown lease status %q", resp.Status)
		}
	}
}

// sleep waits without outliving a stop or done signal.
func (wk *worker) sleep(d time.Duration) {
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	if wk.cfg.Stop != nil {
		select {
		case <-t.C:
		case <-wk.cfg.Stop:
		case <-wk.done:
		}
		return
	}
	select {
	case <-t.C:
	case <-wk.done:
	}
}

// runShard executes one leased shard and posts the outcome. A panic in
// the program (or the engine) is posted as a structured failure so the
// coordinator can retry the shard elsewhere.
func (wk *worker) runShard(leaseID string, sh search.Shard) {
	stop := make(chan struct{})
	wk.mu.Lock()
	wk.active[leaseID] = stop
	wk.mu.Unlock()
	defer func() {
		wk.mu.Lock()
		if _, ok := wk.active[leaseID]; ok {
			delete(wk.active, leaseID)
		}
		wk.mu.Unlock()
	}()

	// The shard must stop when the lease is cancelled OR the whole
	// worker is stopped; fold both into one channel.
	shardStop := stop
	if wk.cfg.Stop != nil {
		merged := make(chan struct{})
		go func() {
			select {
			case <-stop:
			case <-wk.cfg.Stop:
			}
			close(merged)
		}()
		shardStop = merged
	}

	opts := wk.opts
	ckptPath := ""
	if wk.cfg.WorkDir != "" && sh.Prefix == nil {
		// Per-shard checkpointing (stride shards only: a prefix
		// subtree reruns from scratch). A stale or foreign checkpoint
		// is discarded, never trusted.
		ckptPath = filepath.Join(wk.cfg.WorkDir, fmt.Sprintf("shard-%04d.ckpt", sh.Index))
		opts.CheckpointPath = ckptPath
		if ck, err := search.LoadCheckpoint(ckptPath); err == nil {
			if verr := search.ValidateShardResume(&opts, sh, ck); verr == nil {
				opts.Resume = ck
				wk.cfg.Logf("dist: shard %d resuming from %s (execution %d)",
					sh.Index, ckptPath, ck.Counters.Executions)
			} else {
				wk.cfg.Logf("dist: shard %d ignoring checkpoint %s: %v", sh.Index, ckptPath, verr)
				os.Remove(ckptPath)
			}
		}
	}

	var rep *search.Report
	failure := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				failure = fmt.Sprintf("panic: %v\n%s", r, debug.Stack())
			}
		}()
		rep = search.RunShard(wk.prog, opts, sh, shardStop)
	}()

	if failure == "" && rep != nil && rep.Interrupted {
		// Cancelled mid-shard (lease lost or worker stopping): the
		// partial report must not be merged, and the coordinator has
		// already requeued or cut the shard.
		return
	}
	resp := &ResultResponse{}
	req := ResultRequest{WorkerID: wk.id, LeaseID: leaseID, Shard: sh.Index, Report: rep, Failure: failure}
	if failure != "" {
		req.Report = nil
		wk.cfg.Logf("dist: shard %d crashed: %.120s", sh.Index, failure)
	}
	if err := wk.post(PathResult, req, resp); err != nil {
		wk.cfg.Logf("dist: posting shard %d result: %v", sh.Index, err)
		return
	}
	if resp.Accepted && failure == "" && ckptPath != "" {
		os.Remove(ckptPath)
	}
	if resp.Done {
		wk.finish()
	}
}

// eventForwarder batches the recorder's JSONL output and posts it to
// the coordinator. Writes are split at line boundaries so interleaved
// worker batches stay line-valid JSONL on the coordinator side.
type eventForwarder struct {
	client *http.Client
	url    string

	mu  sync.Mutex
	buf bytes.Buffer
}

const eventFlushBytes = 64 << 10

func newEventForwarder(client *http.Client, url string) *eventForwarder {
	return &eventForwarder{client: client, url: url}
}

func (f *eventForwarder) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.buf.Write(p)
	var send []byte
	if f.buf.Len() >= eventFlushBytes {
		send = f.takeLinesLocked()
	}
	f.mu.Unlock()
	f.post(send)
	return len(p), nil
}

// takeLinesLocked cuts the buffer at the last newline and returns the
// complete lines, leaving any partial line buffered.
func (f *eventForwarder) takeLinesLocked() []byte {
	b := f.buf.Bytes()
	cut := bytes.LastIndexByte(b, '\n')
	if cut < 0 {
		return nil
	}
	send := append([]byte(nil), b[:cut+1]...)
	rest := append([]byte(nil), b[cut+1:]...)
	f.buf.Reset()
	f.buf.Write(rest)
	return send
}

// Flush posts everything buffered, including a trailing partial line
// (only possible if the recorder was cut mid-write, which Close
// prevents).
func (f *eventForwarder) Flush() {
	f.mu.Lock()
	send := append([]byte(nil), f.buf.Bytes()...)
	f.buf.Reset()
	f.mu.Unlock()
	f.post(send)
}

func (f *eventForwarder) post(data []byte) {
	if len(data) == 0 {
		return
	}
	resp, err := f.client.Post(f.url, "application/jsonl", bytes.NewReader(data))
	if err != nil {
		return // events are best-effort telemetry
	}
	resp.Body.Close()
}
