package dist

import (
	"path/filepath"
	"strings"
	"testing"

	"fairmc/internal/faultinject"
	"fairmc/internal/fsx"
	"fairmc/internal/search"
)

func writeTestSpool(t *testing.T, fsys fsx.FS, dir string, shard int, hash uint64) {
	t.Helper()
	err := spoolWrite(fsys, dir, spoolEntry{
		OptionsHash: hash,
		Program:     "prog",
		Shard:       shard,
		Report:      &search.Report{Executions: 1},
	})
	if err != nil {
		t.Fatalf("spoolWrite shard %d: %v", shard, err)
	}
}

func TestSpoolFooterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for shard := 0; shard < 3; shard++ {
		writeTestSpool(t, fsx.OS, dir, shard, 42)
	}
	entries, corrupt, skipped, err := spoolList(fsx.OS, dir, 42, "prog")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || len(corrupt) != 0 || len(skipped) != 0 {
		t.Fatalf("entries=%d corrupt=%v skipped=%v", len(entries), corrupt, skipped)
	}
	for i, e := range entries {
		if e.Shard != i || e.Report == nil {
			t.Fatalf("entry %d: %+v", i, e)
		}
	}
}

func TestSpoolTruncatedEntryCorrupt(t *testing.T) {
	dir := t.TempDir()
	writeTestSpool(t, fsx.OS, dir, 0, 42)
	writeTestSpool(t, fsx.OS, dir, 1, 42)
	// Tear shard 1's file mid-payload, as a crashed write leaves it.
	path := spoolPath(dir, 1)
	data, _ := fsx.OS.ReadFile(path)
	if err := fsx.OS.Truncate(path, int64(len(data)/2)); err != nil {
		t.Fatal(err)
	}

	entries, corrupt, _, err := spoolList(fsx.OS, dir, 42, "prog")
	if err != nil {
		t.Fatalf("a corrupt entry must not fail the whole replay: %v", err)
	}
	if len(entries) != 1 || entries[0].Shard != 0 {
		t.Fatalf("entries = %+v, want only shard 0", entries)
	}
	if len(corrupt) != 1 || corrupt[0].Shard != 1 {
		t.Fatalf("corrupt = %+v, want shard 1", corrupt)
	}
}

func TestSpoolBitFlipCorrupt(t *testing.T) {
	dir := t.TempDir()
	writeTestSpool(t, fsx.OS, dir, 0, 42)
	path := spoolPath(dir, 0)
	data, _ := fsx.OS.ReadFile(path)
	data[len(data)/3] ^= 0x40
	fsx.WriteFileAtomic(fsx.OS, path, data)

	entries, corrupt, _, err := spoolList(fsx.OS, dir, 42, "prog")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || len(corrupt) != 1 || corrupt[0].Reason != "crc mismatch" {
		t.Fatalf("entries=%v corrupt=%+v", entries, corrupt)
	}
}

func TestSpoolMissingFooterCorrupt(t *testing.T) {
	dir := t.TempDir()
	// A v1-era entry: bare JSON, no footer. The honest verdict is
	// "corrupt" — it was never checksummed.
	fsx.WriteFileAtomic(fsx.OS, spoolPath(dir, 2),
		[]byte(`{"version":1,"optionsHash":42,"program":"prog","shard":2,"report":{}}`))
	entries, corrupt, _, err := spoolList(fsx.OS, dir, 42, "prog")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || len(corrupt) != 1 {
		t.Fatalf("entries=%v corrupt=%+v", entries, corrupt)
	}
	if corrupt[0].Shard != 2 || !strings.Contains(corrupt[0].Reason, "footer") {
		t.Fatalf("corrupt = %+v", corrupt[0])
	}
}

func TestSpoolDifferentSearchSkippedNotCorrupt(t *testing.T) {
	dir := t.TempDir()
	writeTestSpool(t, fsx.OS, dir, 0, 999) // other search's hash, intact CRC
	entries, corrupt, skipped, err := spoolList(fsx.OS, dir, 42, "prog")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || len(corrupt) != 0 || len(skipped) != 1 {
		t.Fatalf("entries=%v corrupt=%v skipped=%v", entries, corrupt, skipped)
	}
	// Someone else's work is not ours to delete.
	if _, err := fsx.OS.Stat(spoolPath(dir, 0)); err != nil {
		t.Fatalf("skipped entry was touched: %v", err)
	}
}

func TestSpoolReadCorruptionCaught(t *testing.T) {
	dir := t.TempDir()
	for shard := 0; shard < 4; shard++ {
		writeTestSpool(t, fsx.OS, dir, shard, 42)
	}
	// Every read flips one bit; the CRC footer must catch each one.
	in := faultinject.NewFS(9, faultinject.FSScenario{
		Rules: []faultinject.FSRule{{Path: "spool-shard-", ReadCorrupt: 1}},
	}, fsx.OS)
	entries, corrupt, _, err := spoolList(in, dir, 42, "prog")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d corrupted reads slipped past the CRC", len(entries))
	}
	if len(corrupt) != 4 {
		t.Fatalf("corrupt = %+v, want all 4", corrupt)
	}
}

func TestSpoolShardFromName(t *testing.T) {
	if got := spoolShardFromName(filepath.Join("x", "spool-shard-0012.json")); got != 12 {
		t.Fatalf("parsed %d, want 12", got)
	}
	if got := spoolShardFromName("garbage.json"); got != -1 {
		t.Fatalf("parsed %d, want -1", got)
	}
}
