package dist_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"fairmc/internal/dist"
	"fairmc/internal/search"
)

// dporOpts is the DPOR configuration shared by the distributed DPOR
// tests: an unfair full-depth DFS (DPOR's precondition) over the racy
// increment, counting every violation so the merged counters carry
// real weight.
var dporOpts = search.Options{
	Fair:                   false,
	ContextBound:           -1,
	MaxSteps:               10000,
	DPOR:                   true,
	ContinueAfterViolation: true,
}

// TestDistDPORMatchesSequential: DPOR's work-unit plan grows as units
// merge, with the coordinator extending its lease state to match. Two
// workers draining that growing frontier must reproduce the sequential
// DPOR report field for field — and byte for byte as a run report.
func TestDistDPORMatchesSequential(t *testing.T) {
	coord, srv := startCoordinator(t, dist.CoordinatorConfig{
		Prog:           racyIncrement,
		Program:        "racy",
		Options:        dporOpts,
		RefParallelism: 2,
	})
	runWorkers(t, srv.URL, 2)
	got := coord.Wait()

	want := search.Explore(racyIncrement, dporOpts)
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Fatalf("distributed DPOR report differs from sequential:\n%+v\nvs\n%+v", want, got)
	}
	if w, g := runReportBytes(t, want, "racy", dporOpts), runReportBytes(t, got, "racy", dporOpts); !bytes.Equal(w, g) {
		t.Fatalf("run report not byte-identical:\n%s\nvs\n%s", w, g)
	}
	if want.Violations == 0 {
		t.Fatal("fixture found no violations; test configuration is too weak")
	}
}

// TestDistDPORCoordinatorResume: a coordinator with a state file is
// killed after two DPOR units merged (so its plan has already grown
// past the initial root unit); a new coordinator resumes from the
// file, regrows the plan by re-offering the decided units in index
// order, and the final report is byte-identical to the sequential run.
func TestDistDPORCoordinatorResume(t *testing.T) {
	statePath := t.TempDir() + "/coord-state.json"
	cfg := dist.CoordinatorConfig{
		Prog:           racyIncrement,
		Program:        "racy",
		Options:        dporOpts,
		RefParallelism: 2,
		StatePath:      statePath,
	}
	coordA, srvA := startCoordinator(t, cfg)

	// Complete units 0 and 1 through the protocol, then kill A. Unit 1
	// exists only because unit 0's merge grew the plan.
	var join dist.JoinResponse
	postJSON(t, srvA.URL+dist.PathJoin, dist.JoinRequest{Capacity: 1}, &join)
	for i := 0; i < 2; i++ {
		var lr dist.LeaseResponse
		postJSON(t, srvA.URL+dist.PathLease, dist.LeaseRequest{WorkerID: join.WorkerID}, &lr)
		if lr.Status != dist.LeaseWork {
			t.Fatalf("lease %d: status %q", i, lr.Status)
		}
		rep := search.RunShard(racyIncrement, dporOpts, *lr.Shard, nil)
		var rr dist.ResultResponse
		postJSON(t, srvA.URL+dist.PathResult, dist.ResultRequest{
			WorkerID: join.WorkerID, LeaseID: lr.LeaseID, Shard: lr.Shard.Index, Report: rep,
		}, &rr)
		if !rr.Accepted {
			t.Fatalf("result %d not accepted", i)
		}
	}
	coordA.Interrupt()
	if rep := coordA.Wait(); !rep.Interrupted {
		t.Fatalf("interrupted coordinator's report not marked Interrupted: %+v", rep)
	}
	srvA.Close()

	coordB, srvB := startCoordinator(t, cfg)
	runWorkers(t, srvB.URL, 1)
	got := coordB.Wait()

	want := search.Explore(racyIncrement, dporOpts)
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Fatalf("resumed DPOR report differs from sequential:\n%+v\nvs\n%+v", want, got)
	}
	if w, g := runReportBytes(t, want, "racy", dporOpts), runReportBytes(t, got, "racy", dporOpts); !bytes.Equal(w, g) {
		t.Fatalf("run report not byte-identical after coordinator resume:\n%s\nvs\n%s", w, g)
	}
}

// TestDistDPORWorkerDeath: a worker leases a DPOR unit and goes
// silent. The lease expires, the unit requeues, a healthy worker
// finishes the search — and the report is still byte-identical to the
// sequential DPOR run, with the crash recorded as a WorkerFailure.
func TestDistDPORWorkerDeath(t *testing.T) {
	coord, srv := startCoordinator(t, dist.CoordinatorConfig{
		Prog:           racyIncrement,
		Program:        "racy",
		Options:        dporOpts,
		RefParallelism: 2,
		LeaseTTL:       500 * time.Millisecond,
	})

	// The doomed worker: joins, leases one unit, never speaks again.
	var join dist.JoinResponse
	postJSON(t, srv.URL+dist.PathJoin, dist.JoinRequest{Capacity: 1}, &join)
	var lr dist.LeaseResponse
	postJSON(t, srv.URL+dist.PathLease, dist.LeaseRequest{WorkerID: join.WorkerID}, &lr)
	if lr.Status != dist.LeaseWork {
		t.Fatalf("lease status %q, want %q", lr.Status, dist.LeaseWork)
	}
	if lr.Shard.Unit == nil {
		t.Fatalf("leased shard %d carries no DPOR unit: %+v", lr.Shard.Index, lr.Shard)
	}

	runWorkers(t, srv.URL, 1)
	got := coord.Wait()

	var found bool
	for _, wf := range got.WorkerFailures {
		if wf.Mode == "dist" && wf.Unit == int64(lr.Shard.Index) &&
			strings.Contains(wf.Panic, "lease expired") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no lease-expiry WorkerFailure for unit %d: %+v", lr.Shard.Index, got.WorkerFailures)
	}

	want := search.Explore(racyIncrement, dporOpts)
	if w, g := runReportBytes(t, want, "racy", dporOpts), runReportBytes(t, got, "racy", dporOpts); !bytes.Equal(w, g) {
		t.Fatalf("run report not byte-identical after worker death:\n%s\nvs\n%s", w, g)
	}
}
