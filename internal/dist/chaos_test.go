package dist_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"fairmc/internal/dist"
	"fairmc/internal/dist/transport"
	"fairmc/internal/faultinject"
	"fairmc/internal/obs"
	"fairmc/internal/search"
)

// fastPolicy keeps chaos tests quick: small backoffs, few attempts.
func fastPolicy(seed uint64) transport.Policy {
	return transport.Policy{
		MaxAttempts: 4,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Multiplier:  2,
		Seed:        seed,
	}
}

// TestDistChaosByteIdentical is the headline invariant: under injected
// drops, delays, duplicated deliveries, response resets, a mid-search
// partition, AND one worker killed mid-search, the merged run report is
// byte-identical to the fault-free local run — every fault is absorbed
// by retries, idempotency, requeues, and spooling, never by silently
// losing or double-counting work.
func TestDistChaosByteIdentical(t *testing.T) {
	opts := search.Options{
		Fair: true, ContextBound: -1, MaxSteps: 10000,
		ContinueAfterViolation: true, ConfirmRuns: 2,
	}
	coord, srv := startCoordinator(t, dist.CoordinatorConfig{
		Prog:           racyIncrement,
		Program:        "racy",
		Options:        opts,
		RefParallelism: 2,
		LeaseTTL:       500 * time.Millisecond,
		// Chaos causes benign lease expiries; don't let them exhaust the
		// shard attempt budget.
		MaxShardAttempts: 10,
	})

	const workers = 3
	scenario := faultinject.MustLookup(faultinject.ScenarioStandard)
	kill := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, workers)
	metrics := make([]*obs.Metrics, workers)
	injectors := make([]*faultinject.Injector, workers)
	for i := 0; i < workers; i++ {
		m := &obs.Metrics{}
		in := faultinject.New(uint64(100+i), scenario)
		in.OnFault = func(string) { m.DistFaultsInjected.Inc() }
		metrics[i] = m
		injectors[i] = in
		var stop chan struct{}
		if i == workers-1 {
			stop = kill // this one dies mid-search
		}
		wg.Add(1)
		go func(i int, stop chan struct{}) {
			defer wg.Done()
			errs[i] = dist.RunWorker(dist.WorkerConfig{
				URL:         srv.URL,
				Lookup:      lookup,
				WorkDir:     t.TempDir(),
				Metrics:     m,
				Retry:       fastPolicy(uint64(i)),
				JoinTimeout: 10 * time.Second,
				Transport:   in.RoundTripper(nil),
				Stop:        stop,
			})
		}(i, stop)
	}
	time.AfterFunc(150*time.Millisecond, func() { close(kill) })
	got := coord.Wait()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d under chaos: %v", i, err)
		}
	}

	ref := opts
	ref.Parallelism = 2
	want := search.Explore(racyIncrement, ref)
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Fatalf("chaotic distributed report differs from local -p 2:\n%+v\nvs\n%+v", want, got)
	}
	if w, g := runReportBytes(t, want, "racy", opts), runReportBytes(t, got, "racy", opts); !bytes.Equal(w, g) {
		t.Fatalf("run report not byte-identical under chaos:\n%s\nvs\n%s", w, g)
	}

	// Every recovery must be visible in obs metrics: the injectors
	// recorded their faults, and terminal faults forced retries.
	var faults, retries, terminal int64
	for i := range metrics {
		snap := metrics[i].Snapshot()
		faults += snap.DistFaultsInjected
		retries += snap.DistRetries
		counts := injectors[i].Counts()
		terminal += counts[faultinject.KindDrop] + counts[faultinject.KindPartition] + counts[faultinject.KindReset]
	}
	if faults == 0 {
		t.Fatal("chaos run injected no faults — the scenario did not exercise anything")
	}
	if terminal > 0 && retries == 0 {
		t.Fatalf("injected %d terminal faults but recorded 0 retries", terminal)
	}
	t.Logf("chaos: %d faults injected, %d retries", faults, retries)
}

// postJSONKey is postJSON with an idempotency key header, returning the
// raw response bytes for replay comparison.
func postJSONKey(t *testing.T, url, key string, in, out any) []byte {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(transport.IdempotencyKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestDistDuplicateResultPost: a retried (same idempotency key) and a
// blind (no key, late) duplicate of an accepted result both leave the
// merged report unchanged.
func TestDistDuplicateResultPost(t *testing.T) {
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	coord, srv := startCoordinator(t, dist.CoordinatorConfig{
		Prog: fig3, Program: "fig3", Options: opts, RefParallelism: 2,
	})

	var join dist.JoinResponse
	postJSON(t, srv.URL+dist.PathJoin, dist.JoinRequest{Capacity: 1}, &join)
	var lr dist.LeaseResponse
	postJSON(t, srv.URL+dist.PathLease, dist.LeaseRequest{WorkerID: join.WorkerID}, &lr)
	if lr.Status != dist.LeaseWork {
		t.Fatalf("lease status %q", lr.Status)
	}
	rep := search.RunShard(fig3, opts, *lr.Shard, nil)
	req := dist.ResultRequest{WorkerID: join.WorkerID, LeaseID: lr.LeaseID, Shard: lr.Shard.Index, Report: rep}
	key := "res-test-dup"

	var first dist.ResultResponse
	firstBytes := postJSONKey(t, srv.URL+dist.PathResult, key, req, &first)
	if !first.Accepted {
		t.Fatal("first result not accepted")
	}
	// Retried submission with the same key: the exact original
	// acknowledgement is replayed, the shard is not re-processed.
	var second dist.ResultResponse
	secondBytes := postJSONKey(t, srv.URL+dist.PathResult, key, req, &second)
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatalf("idempotent replay differs:\n%s\nvs\n%s", firstBytes, secondBytes)
	}
	// A keyless duplicate (e.g. from a worker running an older build)
	// hits the late-result path: rejected, not merged twice.
	var third dist.ResultResponse
	postJSONKey(t, srv.URL+dist.PathResult, "", req, &third)
	if third.Accepted {
		t.Fatal("keyless duplicate of a decided shard was accepted")
	}

	runWorkers(t, srv.URL, 1)
	got := coord.Wait()
	ref := opts
	ref.Parallelism = 2
	want := search.Explore(fig3, ref)
	if w, g := runReportBytes(t, want, "fig3", opts), runReportBytes(t, got, "fig3", opts); !bytes.Equal(w, g) {
		t.Fatalf("run report changed after duplicate result posts:\n%s\nvs\n%s", w, g)
	}
}

// TestDistLateResultAfterRequeue: a worker's lease expires, the shard
// is requeued and completed elsewhere, and THEN the original worker's
// result arrives — it must be rejected and the report unchanged.
func TestDistLateResultAfterRequeue(t *testing.T) {
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	coord, srv := startCoordinator(t, dist.CoordinatorConfig{
		Prog: fig3, Program: "fig3", Options: opts, RefParallelism: 2,
		LeaseTTL: 300 * time.Millisecond,
	})

	// Doomed worker leases a shard and goes silent.
	var join dist.JoinResponse
	postJSON(t, srv.URL+dist.PathJoin, dist.JoinRequest{Capacity: 1}, &join)
	var lr dist.LeaseResponse
	postJSON(t, srv.URL+dist.PathLease, dist.LeaseRequest{WorkerID: join.WorkerID}, &lr)
	if lr.Status != dist.LeaseWork {
		t.Fatalf("lease status %q", lr.Status)
	}
	lateRep := search.RunShard(fig3, opts, *lr.Shard, nil)

	// A healthy worker completes the whole search (the lease expires
	// and the shard requeues to it).
	runWorkers(t, srv.URL, 1)
	got := coord.Wait()

	// The doomed worker finally posts its result: too late.
	var rr dist.ResultResponse
	postJSON(t, srv.URL+dist.PathResult, dist.ResultRequest{
		WorkerID: join.WorkerID, LeaseID: lr.LeaseID, Shard: lr.Shard.Index, Report: lateRep,
	}, &rr)
	if rr.Accepted {
		t.Fatal("late result accepted after the shard was decided elsewhere")
	}

	ref := opts
	ref.Parallelism = 2
	want := search.Explore(fig3, ref)
	if w, g := runReportBytes(t, want, "fig3", opts), runReportBytes(t, got, "fig3", opts); !bytes.Equal(w, g) {
		t.Fatalf("run report changed by a late result:\n%s\nvs\n%s", w, g)
	}
}

// TestDistStaleWorkerID: a worker keeps using its pre-restart identity
// against a resumed coordinator. Its stale leases are cancelled, fresh
// leases are granted, and the search completes unchanged.
func TestDistStaleWorkerID(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.json")
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	cfg := dist.CoordinatorConfig{
		Prog: fig3, Program: "fig3", Options: opts, RefParallelism: 2,
		StatePath: statePath,
	}
	coordA, srvA := startCoordinator(t, cfg)
	var join dist.JoinResponse
	postJSON(t, srvA.URL+dist.PathJoin, dist.JoinRequest{Capacity: 1}, &join)
	var lr dist.LeaseResponse
	postJSON(t, srvA.URL+dist.PathLease, dist.LeaseRequest{WorkerID: join.WorkerID}, &lr)
	if lr.Status != dist.LeaseWork {
		t.Fatalf("lease status %q", lr.Status)
	}
	coordA.Interrupt()
	coordA.Wait()
	srvA.Close()

	coordB, srvB := startCoordinator(t, cfg)
	// The stale worker heartbeats with its A-era identity and lease:
	// the resumed coordinator cancels the unknown lease instead of
	// crashing or honoring it.
	var hb dist.HeartbeatResponse
	postJSON(t, srvB.URL+dist.PathHeartbeat, dist.HeartbeatRequest{
		WorkerID: join.WorkerID, LeaseIDs: []string{lr.LeaseID},
	}, &hb)
	if len(hb.Cancelled) != 1 || hb.Cancelled[0] != lr.LeaseID {
		t.Fatalf("stale lease not cancelled: %+v", hb)
	}
	// It can still lease fresh work under the stale worker ID.
	var lr2 dist.LeaseResponse
	postJSON(t, srvB.URL+dist.PathLease, dist.LeaseRequest{WorkerID: join.WorkerID}, &lr2)
	if lr2.Status != dist.LeaseWork {
		t.Fatalf("stale-ID lease status %q", lr2.Status)
	}
	rep := search.RunShard(fig3, opts, *lr2.Shard, nil)
	var rr dist.ResultResponse
	postJSON(t, srvB.URL+dist.PathResult, dist.ResultRequest{
		WorkerID: join.WorkerID, LeaseID: lr2.LeaseID, Shard: lr2.Shard.Index, Report: rep,
	}, &rr)
	if !rr.Accepted {
		t.Fatal("stale-ID result not accepted")
	}

	runWorkers(t, srvB.URL, 1)
	got := coordB.Wait()
	ref := opts
	ref.Parallelism = 2
	want := search.Explore(fig3, ref)
	if w, g := runReportBytes(t, want, "fig3", opts), runReportBytes(t, got, "fig3", opts); !bytes.Equal(w, g) {
		t.Fatalf("run report changed under a stale worker ID:\n%s\nvs\n%s", w, g)
	}
}

// TestDistHeartbeatMetricsDedup: a duplicated heartbeat (same
// idempotency key) merges its telemetry delta exactly once.
func TestDistHeartbeatMetricsDedup(t *testing.T) {
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	m := &obs.Metrics{}
	coord, srv := startCoordinator(t, dist.CoordinatorConfig{
		Prog: fig3, Program: "fig3", Options: opts, RefParallelism: 2,
		Metrics: m,
	})
	defer coord.Interrupt()

	delta := obs.Snapshot{Executions: 5}
	req := dist.HeartbeatRequest{WorkerID: "w-test", Metrics: &delta}
	postJSONKey(t, srv.URL+dist.PathHeartbeat, "hb-w-test-1", req, nil)
	postJSONKey(t, srv.URL+dist.PathHeartbeat, "hb-w-test-1", req, nil)
	if got := m.Snapshot().Executions; got != 5 {
		t.Fatalf("duplicated heartbeat merged delta %d times (executions = %d, want 5)", got/5, got)
	}
	// A new key is a new delta.
	postJSONKey(t, srv.URL+dist.PathHeartbeat, "hb-w-test-2", req, nil)
	if got := m.Snapshot().Executions; got != 10 {
		t.Fatalf("fresh heartbeat not merged (executions = %d, want 10)", got)
	}
}

// resultGate is a RoundTripper that severs result uploads, simulating a
// partition that hits exactly the submission path.
type resultGate struct {
	mu      sync.Mutex
	blocked bool
}

func (g *resultGate) setBlocked(b bool) {
	g.mu.Lock()
	g.blocked = b
	g.mu.Unlock()
}

func (g *resultGate) RoundTrip(req *http.Request) (*http.Response, error) {
	g.mu.Lock()
	blocked := g.blocked
	g.mu.Unlock()
	if blocked && req.URL.Path == dist.PathResult {
		return nil, errors.New("resultGate: link severed")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestDistSpoolReplay: a worker that cannot upload results spools them
// to its workdir; after the coordinator is replaced, a worker sharing
// the workdir replays the spool and the search completes WITHOUT
// re-running any execution — a coordinator restart loses zero completed
// work.
func TestDistSpoolReplay(t *testing.T) {
	workDir := t.TempDir()
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	cfg := dist.CoordinatorConfig{
		Prog: fig3, Program: "fig3", Options: opts, RefParallelism: 2,
		LeaseTTL: 5 * time.Second, // long: completed-but-unposted shards must not requeue mid-test
	}
	coordA, srvA := startCoordinator(t, cfg)
	shardCount := len(coordA.Plan().Shards)

	gate := &resultGate{}
	gate.setBlocked(true)
	mA := &obs.Metrics{}
	stopA := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- dist.RunWorker(dist.WorkerConfig{
			URL:       srvA.URL,
			Lookup:    lookup,
			WorkDir:   workDir,
			Metrics:   mA,
			Retry:     fastPolicy(1),
			Transport: gate,
			Stop:      stopA,
		})
	}()

	// Wait until every shard's result has been spooled.
	deadline := time.After(15 * time.Second)
	for {
		if int(mA.Snapshot().SpooledResults) >= shardCount {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("spooled %d/%d shards before timeout", mA.Snapshot().SpooledResults, shardCount)
		case <-time.After(20 * time.Millisecond):
		}
	}
	close(stopA)
	if err := <-done; err != nil {
		t.Fatalf("spooling worker: %v", err)
	}
	coordA.Interrupt()
	coordA.Wait()
	srvA.Close()

	// A fresh coordinator (same search) and a fresh worker sharing the
	// workdir: everything is satisfied from the spool.
	coordB, srvB := startCoordinator(t, cfg)
	mB := &obs.Metrics{}
	if err := dist.RunWorker(dist.WorkerConfig{
		URL: srvB.URL, Lookup: lookup, WorkDir: workDir, Metrics: mB,
		Retry: fastPolicy(2),
	}); err != nil {
		t.Fatalf("replaying worker: %v", err)
	}
	got := coordB.Wait()

	if execs := mB.Snapshot().Executions; execs != 0 {
		t.Fatalf("replaying worker re-ran %d executions; spool replay should cover every shard", execs)
	}
	if left, _ := filepath.Glob(filepath.Join(workDir, "spool-shard-*.json")); len(left) != 0 {
		t.Fatalf("replayed spool entries not cleaned up: %v", left)
	}
	ref := opts
	ref.Parallelism = 2
	want := search.Explore(fig3, ref)
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Fatalf("spool-replayed report differs from local -p 2:\n%+v\nvs\n%+v", want, got)
	}
	if w, g := runReportBytes(t, want, "fig3", opts), runReportBytes(t, got, "fig3", opts); !bytes.Equal(w, g) {
		t.Fatalf("run report not byte-identical after spool replay:\n%s\nvs\n%s", w, g)
	}
}

// blockingWriter lets the test hold one request inside a handler so a
// second request overflows MaxInflight.
type blockingWriter struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (b *blockingWriter) Write(p []byte) (int, error) {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return len(p), nil
}

// TestDistLoadShedding: beyond MaxInflight the coordinator answers 429
// with Retry-After instead of queueing, and counts the refusal.
func TestDistLoadShedding(t *testing.T) {
	bw := &blockingWriter{entered: make(chan struct{}), release: make(chan struct{})}
	m := &obs.Metrics{}
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	coord, srv := startCoordinator(t, dist.CoordinatorConfig{
		Prog: fig3, Program: "fig3", Options: opts, RefParallelism: 2,
		MaxInflight: 1,
		Metrics:     m,
		EventWriter: bw,
	})
	defer coord.Interrupt()
	defer close(bw.release)

	// Occupy the only slot with an event post that blocks in the
	// handler...
	go http.Post(srv.URL+dist.PathEvents, "application/jsonl", bytes.NewReader([]byte("{}\n")))
	<-bw.entered

	// ...then any further request must be shed.
	resp, err := http.Get(srv.URL + dist.PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if m.Snapshot().ShedRequests == 0 {
		t.Fatal("shedRequests metric not incremented")
	}
}
