// Package transport is the hardened comms layer for worker↔coordinator
// HTTP calls: one retry policy with classified errors, exponential
// backoff with deterministic jitter, per-endpoint deadlines, optional
// idempotency keys, and a per-peer circuit breaker with half-open
// probes.
//
// Every remote interaction in internal/dist goes through Client.PostJSON
// so the failure behavior is uniform: transient failures (network
// errors, 5xx, 429, garbled responses) are retried under the policy;
// terminal failures (other 4xx) surface immediately as *StatusError.
// A 429 with Retry-After overrides the computed backoff, which is how
// workers honor coordinator load shedding.
package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fairmc/internal/rng"
)

// IdempotencyKeyHeader carries the client-chosen dedup key on POSTs
// whose effect must apply at most once (results, heartbeat metric
// deltas). The coordinator replays the original response for a repeated
// key.
const IdempotencyKeyHeader = "X-Idempotency-Key"

// Policy is the shared retry/backoff configuration.
type Policy struct {
	// MaxAttempts bounds tries per call (first attempt included).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it (Multiplier) up to MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// MaxElapsed bounds the whole call including backoff sleeps; zero
	// means attempts alone bound the call. Per-call overrides exist on
	// Call.
	MaxElapsed time.Duration
	// Seed keys the deterministic jitter stream; jitter for attempt k of
	// a path is a pure function of (Seed, path, k), so a retry schedule
	// replays exactly under the same seed.
	Seed uint64
}

// DefaultPolicy returns the policy used by workers unless tuned via
// flags: 8 attempts, 100ms base doubling to a 5s cap.
func DefaultPolicy(seed uint64) Policy {
	return Policy{
		MaxAttempts: 8,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		Multiplier:  2,
		Seed:        seed,
	}
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// Backoff returns the pause before attempt number attempt (1-based
// count of attempts already made) for the given path: exponential with
// deterministic jitter in [50%, 100%) of the exponential value.
func (p Policy) Backoff(path string, attempt int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	g := rng.New(rng.Mix(p.Seed, rng.Mix(pathHash(path), uint64(attempt))))
	frac := 0.5 + float64(g.Uint64()%1e6)/2e6 // [0.5, 1.0)
	return time.Duration(d * frac)
}

func pathHash(p string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// StatusError is a non-2xx HTTP response surfaced as an error.
type StatusError struct {
	Path       string
	StatusCode int
	Body       string
	// RetryAfter is the parsed Retry-After duration on a 429/503, zero
	// otherwise.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%s: HTTP %d: %s", e.Path, e.StatusCode, e.Body)
}

// ErrCircuitOpen is returned (wrapped) when the breaker refuses a call
// without touching the network.
var ErrCircuitOpen = errors.New("transport: circuit open")

// Classify reports whether an error from one attempt is worth retrying.
// Network-level failures, 5xx, 429 (shed), and garbled/truncated
// responses are retryable; other 4xx are terminal (the request itself
// is wrong, a retry cannot fix it).
func Classify(err error) (retryable bool) {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		switch {
		case se.StatusCode == http.StatusTooManyRequests:
			return true
		case se.StatusCode >= 500:
			return true
		default:
			return false
		}
	}
	if errors.Is(err, ErrCircuitOpen) {
		return false
	}
	// Everything else — net errors, injected faults, JSON decode errors
	// from truncated bodies — is transient as far as the caller can
	// tell.
	return true
}

// Breaker is a per-peer circuit breaker. After Threshold consecutive
// call failures it opens for Cooldown; the first call after cooldown is
// the half-open probe — its success closes the breaker, its failure
// re-opens it.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (default 2s).
	Cooldown time.Duration
	// OnOpen observes closed→open (and reopen-after-probe) transitions;
	// typically wired to obs.Metrics.BreakerOpens.
	OnOpen func()
	// Now replaces time.Now for tests; nil means time.Now.
	Now func() time.Time

	mu       sync.Mutex
	failures int
	state    breakerState
	openedAt time.Time
	probing  bool
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 2 * time.Second
	}
	return b.Cooldown
}

// Allow reports whether a call may proceed. In the open state it
// returns false until Cooldown has passed, then admits exactly one
// half-open probe at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds the final outcome of a call (after its retries) back
// into the breaker.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.failures = 0
		b.state = breakerClosed
		b.probing = false
		return
	}
	if b.state == breakerHalfOpen {
		// Probe failed: straight back to open.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		if b.OnOpen != nil {
			b.OnOpen()
		}
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold() {
		b.state = breakerOpen
		b.openedAt = b.now()
		if b.OnOpen != nil {
			b.OnOpen()
		}
	}
}

// Reset closes the breaker unconditionally. A successful out-of-band
// probe (e.g. a fresh join, which bypasses the breaker) proves the peer
// reachable again.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.state = breakerClosed
	b.probing = false
}

// Open reports whether the breaker is currently refusing calls.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && b.now().Sub(b.openedAt) < b.cooldown()
}

// Call tunes one PostJSON invocation.
type Call struct {
	// Key, when non-empty, is sent as the idempotency key header on
	// every attempt so server-side dedup collapses retries.
	Key string
	// MaxElapsed overrides Policy.MaxElapsed for this call.
	MaxElapsed time.Duration
	// MaxAttempts overrides Policy.MaxAttempts for this call.
	MaxAttempts int
	// NoRetry makes the call single-attempt (heartbeats: the next tick
	// is the retry).
	NoRetry bool
	// NoBreaker bypasses the circuit breaker (join: the point of the
	// call is to probe reachability).
	NoBreaker bool
}

// Client issues retried JSON POSTs against one peer.
type Client struct {
	// Base is the peer URL prefix, e.g. "http://host:9000".
	Base string
	// HTTP is the underlying client. Its Timeout should be zero; the
	// transport applies per-endpoint deadlines via Deadlines instead.
	HTTP *http.Client
	// Policy is the retry/backoff configuration.
	Policy Policy
	// Deadlines maps endpoint path → per-attempt deadline. Paths absent
	// from the map use DefaultDeadline.
	Deadlines map[string]time.Duration
	// DefaultDeadline is the per-attempt deadline for unlisted paths
	// (default 10s).
	DefaultDeadline time.Duration
	// Breaker, when set, gates calls to the peer.
	Breaker *Breaker
	// OnRetry observes each retried attempt: path, attempt number
	// (1-based, the attempt that failed), and the error. Typically wired
	// to obs.Metrics.DistRetries.
	OnRetry func(path string, attempt int, err error)
	// Sleep replaces time.Sleep for backoff pauses (tests).
	Sleep func(time.Duration)
	// Stop, when closed, aborts in-flight backoff sleeps so workers shut
	// down promptly.
	Stop <-chan struct{}
}

func (c *Client) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	if c.Sleep != nil {
		c.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.Stop:
		return false
	}
}

func (c *Client) deadline(path string) time.Duration {
	if d, ok := c.Deadlines[path]; ok && d > 0 {
		return d
	}
	if c.DefaultDeadline > 0 {
		return c.DefaultDeadline
	}
	return 10 * time.Second
}

var errStopped = errors.New("transport: stopped")

// PostJSON POSTs in as JSON to path and decodes the response into out
// (out may be nil), retrying retryable failures under the policy. The
// returned error is the last attempt's error, or a wrapped
// ErrCircuitOpen if the breaker refused the call.
func (c *Client) PostJSON(path string, in, out any, call Call) error {
	if c.Breaker != nil && !call.NoBreaker {
		if !c.Breaker.Allow() {
			return fmt.Errorf("%s: %w", path, ErrCircuitOpen)
		}
	}
	err := c.postRetry(path, in, out, call)
	if c.Breaker != nil && !call.NoBreaker {
		// Shed (429) responses are the coordinator protecting itself,
		// not the peer being down — they don't trip the breaker.
		c.Breaker.Record(err == nil || isShed(err))
	}
	return err
}

func isShed(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.StatusCode == http.StatusTooManyRequests
}

func (c *Client) postRetry(path string, in, out any, call Call) error {
	policy := c.Policy.withDefaults()
	attempts := policy.MaxAttempts
	if call.MaxAttempts > 0 {
		attempts = call.MaxAttempts
	}
	if call.NoRetry {
		attempts = 1
	}
	maxElapsed := policy.MaxElapsed
	if call.MaxElapsed > 0 {
		maxElapsed = call.MaxElapsed
	}
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("%s: encode: %w", path, err)
	}
	start := time.Now()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			backoff := policy.Backoff(path, attempt-1)
			// A shed response dictates its own pause.
			var se *StatusError
			if errors.As(lastErr, &se) && se.RetryAfter > 0 {
				backoff = se.RetryAfter
			}
			if maxElapsed > 0 && time.Since(start)+backoff > maxElapsed {
				break
			}
			if !c.sleep(backoff) {
				return fmt.Errorf("%s: %w", path, errStopped)
			}
		}
		lastErr = c.postOnce(path, body, out, call.Key)
		if lastErr == nil {
			return nil
		}
		if !Classify(lastErr) {
			return lastErr
		}
		if c.OnRetry != nil && attempt < attempts {
			c.OnRetry(path, attempt, lastErr)
		}
		if maxElapsed > 0 && time.Since(start) >= maxElapsed {
			break
		}
		select {
		case <-c.Stop:
			return fmt.Errorf("%s: %w", path, errStopped)
		default:
		}
	}
	return lastErr
}

func (c *Client) postOnce(path string, body []byte, out any, key string) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.deadline(path))
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(IdempotencyKeyHeader, key)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("%s: read: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{
			Path:       path,
			StatusCode: resp.StatusCode,
			Body:       truncate(string(bytes.TrimSpace(data)), 200),
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return se
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("%s: decode: %w", path, err)
		}
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
