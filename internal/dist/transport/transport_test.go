package transport

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Multiplier: 2, Seed: 9}
	for attempt := 1; attempt <= 7; attempt++ {
		a := p.Backoff("/v1/result", attempt)
		b := p.Backoff("/v1/result", attempt)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic: %s vs %s", attempt, a, b)
		}
		// Exponential value for this attempt, capped.
		exp := float64(p.BaseDelay)
		for i := 1; i < attempt; i++ {
			exp *= 2
			if exp > float64(p.MaxDelay) {
				exp = float64(p.MaxDelay)
				break
			}
		}
		if a < time.Duration(exp/2) || a >= time.Duration(exp) {
			t.Fatalf("attempt %d: backoff %s outside [%s, %s)", attempt, a, time.Duration(exp/2), time.Duration(exp))
		}
	}
	p2 := p
	p2.Seed = 10
	if p.Backoff("/v1/result", 3) == p2.Backoff("/v1/result", 3) {
		t.Fatal("different seeds should jitter differently")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("connection refused"), true},
		{&StatusError{StatusCode: 500}, true},
		{&StatusError{StatusCode: 429}, true},
		{&StatusError{StatusCode: 400}, false},
		{&StatusError{StatusCode: 404}, false},
		{ErrCircuitOpen, false},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestPostJSONRetriesUntilSuccess(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) < 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	var retries int
	c := &Client{
		Base:    srv.URL,
		HTTP:    srv.Client(),
		Policy:  Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Multiplier: 2, Seed: 1},
		OnRetry: func(string, int, error) { retries++ },
		Sleep:   func(time.Duration) {},
	}
	var out struct{ OK bool }
	if err := c.PostJSON("/v1/x", map[string]int{"a": 1}, &out, Call{}); err != nil {
		t.Fatal(err)
	}
	if !out.OK || atomic.LoadInt32(&calls) != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d out=%+v", calls, retries, out)
	}
}

func TestPostJSONTerminalErrorNoRetry(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client(), Sleep: func(time.Duration) {}}
	err := c.PostJSON("/v1/x", nil, nil, Call{})
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 StatusError, got %v", err)
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Fatalf("terminal error must not retry, calls=%d", calls)
	}
}

func TestPostJSONHonorsRetryAfter(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	var slept []time.Duration
	c := &Client{
		Base:   srv.URL,
		HTTP:   srv.Client(),
		Policy: Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1},
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	}
	if err := c.PostJSON("/v1/x", nil, nil, Call{}); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("Retry-After should dictate the backoff, slept=%v", slept)
	}
}

func TestPostJSONIdempotencyKeyOnEveryAttempt(t *testing.T) {
	var keys []string
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get(IdempotencyKeyHeader))
		if atomic.AddInt32(&calls, 1) == 1 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	c := &Client{
		Base:   srv.URL,
		HTTP:   srv.Client(),
		Policy: Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1},
		Sleep:  func(time.Duration) {},
	}
	if err := c.PostJSON("/v1/x", nil, nil, Call{Key: "res-w1-l1-4"}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "res-w1-l1-4" || keys[1] != "res-w1-l1-4" {
		t.Fatalf("idempotency key must ride every attempt, got %v", keys)
	}
}

func TestBreakerOpensAndProbes(t *testing.T) {
	now := time.Unix(0, 0)
	opens := 0
	b := &Breaker{Threshold: 3, Cooldown: time.Second, OnOpen: func() { opens++ }, Now: func() time.Time { return now }}

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(false)
	}
	if opens != 1 {
		t.Fatalf("opens = %d, want 1", opens)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if !b.Open() {
		t.Fatal("Open() = false while open")
	}

	// After cooldown: exactly one half-open probe.
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open probe refused")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails → reopen.
	b.Record(false)
	if opens != 2 {
		t.Fatalf("failed probe should reopen, opens = %d", opens)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a call")
	}

	// Next probe succeeds → closed again.
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Record(true)
	if !b.Allow() || b.Open() {
		t.Fatal("successful probe should close the breaker")
	}
}

func TestClientBreakerIntegration(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 2, Cooldown: time.Minute, Now: func() time.Time { return now }}
	c := &Client{
		Base:    srv.URL,
		HTTP:    srv.Client(),
		Policy:  Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, Seed: 1},
		Breaker: b,
		Sleep:   func(time.Duration) {},
	}
	for i := 0; i < 2; i++ {
		if err := c.PostJSON("/v1/x", nil, nil, Call{}); err == nil {
			t.Fatal("want error")
		}
	}
	err := c.PostJSON("/v1/x", nil, nil, Call{})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	// NoBreaker bypasses the open breaker.
	err = c.PostJSON("/v1/x", nil, nil, Call{NoBreaker: true})
	if errors.Is(err, ErrCircuitOpen) {
		t.Fatal("NoBreaker call must bypass the breaker")
	}
}

func TestShedDoesNotTripBreaker(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "shed", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	b := &Breaker{Threshold: 2, Cooldown: time.Minute}
	c := &Client{
		Base:    srv.URL,
		HTTP:    srv.Client(),
		Policy:  Policy{MaxAttempts: 1, BaseDelay: time.Millisecond, Seed: 1},
		Breaker: b,
		Sleep:   func(time.Duration) {},
	}
	for i := 0; i < 5; i++ {
		c.PostJSON("/v1/x", nil, nil, Call{})
	}
	if b.Open() {
		t.Fatal("429 responses must not open the breaker")
	}
}

func TestNoRetrySingleAttempt(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client(), Sleep: func(time.Duration) {}}
	if err := c.PostJSON("/v1/heartbeat", nil, nil, Call{NoRetry: true}); err == nil {
		t.Fatal("want error")
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Fatalf("NoRetry made %d calls", calls)
	}
}

func TestMaxElapsedBoundsCall(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := &Client{
		Base:   srv.URL,
		HTTP:   srv.Client(),
		Policy: Policy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 1},
	}
	start := time.Now()
	if err := c.PostJSON("/v1/x", nil, nil, Call{MaxElapsed: 120 * time.Millisecond}); err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("MaxElapsed ignored: call took %s", elapsed)
	}
	if n := atomic.LoadInt32(&calls); n >= 100 {
		t.Fatalf("MaxElapsed ignored: %d attempts", n)
	}
}
