package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"fairmc/internal/fsx"
	"fairmc/internal/search"
)

// spoolVersion guards the spool file format. Version 2 added the CRC32C
// footer; v1 entries (no footer) are reported as corrupt, which is the
// honest verdict — they were never checksummed.
const spoolVersion = 2

// spoolFooterMagic opens the 12-byte spool footer:
// "SPCK" + u32 LE payload length + u32 LE CRC32C(payload).
const spoolFooterMagic = "SPCK"

const spoolFooterLen = 12

var spoolCRCTable = crc32.MakeTable(crc32.Castagnoli)

// spoolEntry is one completed shard report persisted to -workdir while
// the coordinator is unreachable. OptionsHash ties the entry to the
// search it belongs to, so a stale spool from a different run is
// rejected at replay instead of corrupting the merge.
type spoolEntry struct {
	Version     int            `json:"version"`
	OptionsHash uint64         `json:"optionsHash"`
	Program     string         `json:"program"`
	Shard       int            `json:"shard"`
	Report      *search.Report `json:"report"`
}

// spoolCorrupt reports one spool file whose footer or checksum failed:
// a torn write or silent corruption, surfaced to the coordinator as a
// WorkerFailure instead of silently dropped or fatally trusted.
type spoolCorrupt struct {
	Shard  int // parsed from the filename; -1 if unparseable
	Name   string
	Reason string
}

func spoolPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("spool-shard-%04d.json", shard))
}

// spoolShardFromName recovers the shard index from a spool filename, so
// a corrupt entry (whose payload is unreadable) can still name the
// shard it belonged to.
func spoolShardFromName(name string) int {
	var shard int
	if _, err := fmt.Sscanf(filepath.Base(name), "spool-shard-%04d.json", &shard); err != nil {
		return -1
	}
	return shard
}

// spoolFrame appends the CRC32C footer to a JSON payload.
func spoolFrame(payload []byte) []byte {
	out := make([]byte, len(payload)+spoolFooterLen)
	copy(out, payload)
	f := out[len(payload):]
	copy(f, spoolFooterMagic)
	binary.LittleEndian.PutUint32(f[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[8:12], crc32.Checksum(payload, spoolCRCTable))
	return out
}

// spoolUnframe validates the footer and returns the payload, or a
// reason the entry cannot be trusted.
func spoolUnframe(data []byte) (payload []byte, reason string) {
	if len(data) < spoolFooterLen {
		return nil, "too short for a footer"
	}
	f := data[len(data)-spoolFooterLen:]
	if string(f[:4]) != spoolFooterMagic {
		return nil, "missing CRC footer"
	}
	n := binary.LittleEndian.Uint32(f[4:8])
	if int(n) != len(data)-spoolFooterLen {
		return nil, fmt.Sprintf("footer length %d does not match payload %d", n, len(data)-spoolFooterLen)
	}
	payload = data[:len(data)-spoolFooterLen]
	if crc32.Checksum(payload, spoolCRCTable) != binary.LittleEndian.Uint32(f[8:12]) {
		return nil, "crc mismatch"
	}
	return payload, ""
}

// spoolWrite persists a completed shard report atomically, with a
// CRC32C footer so replay can tell a good entry from a torn or
// corrupted one.
func spoolWrite(fsys fsx.FS, dir string, e spoolEntry) error {
	e.Version = spoolVersion
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("spool shard %d: %w", e.Shard, err)
	}
	return fsx.WriteFileAtomic(fsys, spoolPath(dir, e.Shard), spoolFrame(payload))
}

// spoolList returns the spooled entries in dir whose options hash and
// program match, in shard order. Entries that fail their checksum are
// returned in corrupt (the caller surfaces them as WorkerFailures);
// entries that belong to a different search are skipped — they are
// someone else's work, not ours to replay or delete.
func spoolList(fsys fsx.FS, dir string, optionsHash uint64, program string) (entries []spoolEntry, corrupt []spoolCorrupt, skipped []string, err error) {
	names, err := fsys.Glob(filepath.Join(dir, "spool-shard-*.json"))
	if err != nil {
		return nil, nil, nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		data, rerr := fsys.ReadFile(name)
		if rerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", filepath.Base(name), rerr))
			continue
		}
		payload, reason := spoolUnframe(data)
		if reason == "" {
			var e spoolEntry
			if jerr := json.Unmarshal(payload, &e); jerr != nil {
				reason = fmt.Sprintf("checksummed payload is not valid JSON: %v", jerr)
			} else if e.Version != spoolVersion || e.OptionsHash != optionsHash || e.Program != program || e.Report == nil {
				skipped = append(skipped, fmt.Sprintf("%s: different search (version=%d hash=%#x program=%s)",
					filepath.Base(name), e.Version, e.OptionsHash, e.Program))
				continue
			} else {
				entries = append(entries, e)
				continue
			}
		}
		corrupt = append(corrupt, spoolCorrupt{
			Shard:  spoolShardFromName(name),
			Name:   filepath.Base(name),
			Reason: reason,
		})
	}
	return entries, corrupt, skipped, nil
}

// spoolRemove deletes a replayed entry.
func spoolRemove(fsys fsx.FS, dir string, shard int) error {
	err := fsys.Remove(spoolPath(dir, shard))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
