package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fairmc/internal/search"
)

// spoolVersion guards the spool file format.
const spoolVersion = 1

// spoolEntry is one completed shard report persisted to -workdir while
// the coordinator is unreachable. OptionsHash ties the entry to the
// search it belongs to, so a stale spool from a different run is
// rejected at replay instead of corrupting the merge.
type spoolEntry struct {
	Version     int            `json:"version"`
	OptionsHash uint64         `json:"optionsHash"`
	Program     string         `json:"program"`
	Shard       int            `json:"shard"`
	Report      *search.Report `json:"report"`
}

func spoolPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("spool-shard-%04d.json", shard))
}

// spoolWrite persists a completed shard report atomically.
func spoolWrite(dir string, e spoolEntry) error {
	e.Version = spoolVersion
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("spool shard %d: %w", e.Shard, err)
	}
	return search.AtomicWriteFile(spoolPath(dir, e.Shard), data)
}

// spoolList returns the spooled entries in dir whose options hash and
// program match, in shard order. Entries that fail to parse or belong
// to a different search are skipped (and reported in skipped) — they
// are someone else's work, not ours to replay or delete.
func spoolList(dir string, optionsHash uint64, program string) (entries []spoolEntry, skipped []string, err error) {
	names, err := filepath.Glob(filepath.Join(dir, "spool-shard-*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		data, rerr := os.ReadFile(name)
		if rerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", filepath.Base(name), rerr))
			continue
		}
		var e spoolEntry
		if jerr := json.Unmarshal(data, &e); jerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", filepath.Base(name), jerr))
			continue
		}
		if e.Version != spoolVersion || e.OptionsHash != optionsHash || e.Program != program || e.Report == nil {
			skipped = append(skipped, fmt.Sprintf("%s: different search (version=%d hash=%#x program=%s)",
				filepath.Base(name), e.Version, e.OptionsHash, e.Program))
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped, nil
}

// spoolRemove deletes a replayed entry.
func spoolRemove(dir string, shard int) error {
	err := os.Remove(spoolPath(dir, shard))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
