package dist_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fairmc/internal/dist"
	"fairmc/internal/obs"
	"fairmc/internal/search"
)

// TestDistCorruptSpoolEntryAdvisory: a spool entry whose CRC footer
// fails is skipped and surfaced to the coordinator as an advisory
// WorkerFailure — the replay continues, the affected shard is simply
// re-explored, the reporting worker is NOT excluded (a single-worker
// search must not livelock on its own report), and the merged report
// stays byte-identical to the fault-free local run.
func TestDistCorruptSpoolEntryAdvisory(t *testing.T) {
	workDir := t.TempDir()
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	cfg := dist.CoordinatorConfig{
		Prog: fig3, Program: "fig3", Options: opts, RefParallelism: 2,
		LeaseTTL: 5 * time.Second,
	}
	coordA, srvA := startCoordinator(t, cfg)
	shardCount := len(coordA.Plan().Shards)

	// Phase 1: sever the result path so every shard report spools.
	gate := &resultGate{}
	gate.setBlocked(true)
	mA := &obs.Metrics{}
	stopA := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- dist.RunWorker(dist.WorkerConfig{
			URL:       srvA.URL,
			Lookup:    lookup,
			WorkDir:   workDir,
			Metrics:   mA,
			Retry:     fastPolicy(1),
			Transport: gate,
			Stop:      stopA,
		})
	}()
	deadline := time.After(15 * time.Second)
	for int(mA.Snapshot().SpooledResults) < shardCount {
		select {
		case <-deadline:
			t.Fatalf("spooled %d/%d shards before timeout", mA.Snapshot().SpooledResults, shardCount)
		case <-time.After(20 * time.Millisecond):
		}
	}
	close(stopA)
	if err := <-done; err != nil {
		t.Fatalf("spooling worker: %v", err)
	}
	coordA.Interrupt()
	coordA.Wait()
	srvA.Close()

	// Corrupt one entry: flip a payload bit under the intact footer.
	names, _ := filepath.Glob(filepath.Join(workDir, "spool-shard-*.json"))
	if len(names) != shardCount {
		t.Fatalf("spooled files = %v, want %d", names, shardCount)
	}
	victim := names[0]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/4] ^= 0x01
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh coordinator and ONE worker sharing the workdir.
	// The corrupt entry must not fail the replay or exclude the only
	// worker; the search completes with one shard re-explored.
	coordB, srvB := startCoordinator(t, cfg)
	mB := &obs.Metrics{}
	if err := dist.RunWorker(dist.WorkerConfig{
		URL: srvB.URL, Lookup: lookup, WorkDir: workDir, Metrics: mB,
		Retry: fastPolicy(2),
	}); err != nil {
		t.Fatalf("replaying worker: %v", err)
	}
	got := coordB.Wait()

	if execs := mB.Snapshot().Executions; execs == 0 {
		t.Fatal("corrupted shard was not re-explored")
	}
	var advisory *search.WorkerFailure
	for i := range got.WorkerFailures {
		if strings.Contains(got.WorkerFailures[i].Panic, "corrupt spool entry") {
			advisory = &got.WorkerFailures[i]
		}
	}
	if advisory == nil {
		t.Fatalf("corrupt entry not surfaced as a WorkerFailure: %+v", got.WorkerFailures)
	}
	if advisory.Attempt != 0 {
		t.Fatalf("advisory failure charged an attempt: %+v", advisory)
	}
	if left, _ := filepath.Glob(filepath.Join(workDir, "spool-shard-*.json")); len(left) != 0 {
		t.Fatalf("spool not cleaned up (incl. the corrupt entry): %v", left)
	}

	ref := opts
	ref.Parallelism = 2
	want := search.Explore(fig3, ref)
	// The advisory failure legitimately appears only in the distributed
	// run; everything the deterministic report contract covers must
	// still match.
	gotN := normalize(got)
	gotN.WorkerFailures = nil
	got = gotN
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Fatalf("report differs from local -p 2:\n%+v\nvs\n%+v", want, got)
	}
	if w, g := runReportBytes(t, want, "fig3", opts), runReportBytes(t, got, "fig3", opts); !bytes.Equal(w, g) {
		t.Fatalf("run report not byte-identical with a corrupt spool entry:\n%s\nvs\n%s", w, g)
	}
}
