// Package dist distributes a search across processes and machines: a
// coordinator owns the shard plan (search.PlanShards) and hands out
// lease-based work items over plain HTTP+JSON; workers run shards
// through the sequential search engine (search.RunShard) and post back
// mergeable reports, telemetry deltas, and trace events.
//
// The determinism contract is inherited from the sharding layer: the
// coordinator merges shard reports in plan order with the same merge
// code the in-process parallel driver uses, so the final run report of
// a distributed search is byte-identical to a local run with
// Parallelism = RefParallelism of the same program, seed, and options
// — regardless of worker count, worker crashes, lease expiries, or a
// coordinator restart from its state file.
//
// Robustness model:
//
//   - Work items are leases with a TTL. Workers extend their leases by
//     heartbeating; a lease that expires (worker crashed, wedged, or
//     partitioned) requeues its shard with the failed worker excluded.
//   - Retries are bounded (CoordinatorConfig.MaxShardAttempts); a
//     shard that keeps failing is abandoned and surfaces in the merged
//     report as Skipped work plus structured WorkerFailures — explicit
//     coverage loss, never a silent gap.
//   - The coordinator persists a state file (search.AtomicWriteFile,
//     the checkpoint machinery's durable write) after every shard
//     completion, so a killed coordinator resumes without re-running
//     completed shards.
//
// See docs/DISTRIBUTED.md for the protocol walkthrough.
package dist

import (
	"time"

	"fairmc/internal/obs"
	"fairmc/internal/search"
)

// Protocol endpoints, all rooted at the coordinator's address.
// join/lease/heartbeat/result/events are POST with JSON bodies
// (events: raw JSONL); metrics and status are GET.
const (
	PathJoin      = "/v1/join"
	PathLease     = "/v1/lease"
	PathHeartbeat = "/v1/heartbeat"
	PathResult    = "/v1/result"
	PathEvents    = "/v1/events"
	PathMetrics   = "/metrics"
	PathStatus    = "/status"
)

// SearchSpec is the wire form of the search configuration: every
// semantic option plus the operational ones a worker needs. Workers
// rebuild search.Options from it and verify the rebuilt options hash
// against the plan's before running anything, so configuration skew
// (version drift, a worker pointed at the wrong coordinator) is caught
// before any work is handed out.
type SearchSpec struct {
	Program                 string `json:"program"`
	Fair                    bool   `json:"fair"`
	FairK                   int    `json:"fairK,omitempty"`
	ContextBound            int    `json:"contextBound"`
	DepthBound              int    `json:"depthBound,omitempty"`
	RandomTail              bool   `json:"randomTail,omitempty"`
	RandomWalk              bool   `json:"randomWalk,omitempty"`
	PCT                     bool   `json:"pct,omitempty"`
	PCTDepth                int    `json:"pctDepth,omitempty"`
	MaxSteps                int64  `json:"maxSteps,omitempty"`
	MaxExecutions           int64  `json:"maxExecutions,omitempty"`
	MemModel                string `json:"memModel,omitempty"`
	TSOBufCap               int    `json:"tsoBufCap,omitempty"`
	Seed                    uint64 `json:"seed"`
	StatefulPrune           bool   `json:"statefulPrune,omitempty"`
	DPOR                    bool   `json:"dpor,omitempty"`
	SleepSets               bool   `json:"sleepSets,omitempty"`
	DivergenceRetries       int    `json:"divergenceRetries,omitempty"`
	DisableConformance      bool   `json:"disableConformance,omitempty"`
	ContinueAfterViolation  bool   `json:"continueAfterViolation,omitempty"`
	ContinueAfterDivergence bool   `json:"continueAfterDivergence,omitempty"`
	RecordTrace             bool   `json:"recordTrace,omitempty"`
	WatchdogMS              int64  `json:"watchdogMs,omitempty"`
	CheckpointIntervalMS    int64  `json:"checkpointIntervalMs,omitempty"`
}

// SpecFromOptions captures the distributable part of opts.
func SpecFromOptions(program string, o search.Options) SearchSpec {
	return SearchSpec{
		Program:                 program,
		Fair:                    o.Fair,
		FairK:                   o.FairK,
		ContextBound:            o.ContextBound,
		DepthBound:              o.DepthBound,
		RandomTail:              o.RandomTail,
		RandomWalk:              o.RandomWalk,
		PCT:                     o.PCT,
		PCTDepth:                o.PCTDepth,
		MaxSteps:                o.MaxSteps,
		MaxExecutions:           o.MaxExecutions,
		MemModel:                o.MemModel,
		TSOBufCap:               o.TSOBufCap,
		Seed:                    o.Seed,
		StatefulPrune:           o.StatefulPrune,
		DPOR:                    o.DPOR,
		SleepSets:               o.SleepSets,
		DivergenceRetries:       o.DivergenceRetries,
		DisableConformance:      o.DisableConformance,
		ContinueAfterViolation:  o.ContinueAfterViolation,
		ContinueAfterDivergence: o.ContinueAfterDivergence,
		RecordTrace:             o.RecordTrace,
		WatchdogMS:              int64(o.Watchdog / time.Millisecond),
		CheckpointIntervalMS:    int64(o.CheckpointInterval / time.Millisecond),
	}
}

// Options rebuilds the worker-side search options. Parallelism is 1:
// shards always run on the sequential engine.
func (s SearchSpec) Options() search.Options {
	return search.Options{
		Fair:                    s.Fair,
		FairK:                   s.FairK,
		ContextBound:            s.ContextBound,
		DepthBound:              s.DepthBound,
		RandomTail:              s.RandomTail,
		RandomWalk:              s.RandomWalk,
		PCT:                     s.PCT,
		PCTDepth:                s.PCTDepth,
		MaxSteps:                s.MaxSteps,
		MaxExecutions:           s.MaxExecutions,
		MemModel:                s.MemModel,
		TSOBufCap:               s.TSOBufCap,
		Seed:                    s.Seed,
		StatefulPrune:           s.StatefulPrune,
		DPOR:                    s.DPOR,
		SleepSets:               s.SleepSets,
		DivergenceRetries:       s.DivergenceRetries,
		DisableConformance:      s.DisableConformance,
		ContinueAfterViolation:  s.ContinueAfterViolation,
		ContinueAfterDivergence: s.ContinueAfterDivergence,
		RecordTrace:             s.RecordTrace,
		Watchdog:                time.Duration(s.WatchdogMS) * time.Millisecond,
		CheckpointInterval:      time.Duration(s.CheckpointIntervalMS) * time.Millisecond,
		Parallelism:             1,
		ProgramName:             s.Program,
	}
}

// JoinRequest registers a worker with the coordinator.
type JoinRequest struct {
	// Capacity is how many shards the worker runs concurrently
	// (informational; the worker pulls leases one at a time per slot).
	Capacity int `json:"capacity"`
}

// JoinResponse hands the worker its identity and the search to run.
type JoinResponse struct {
	WorkerID string     `json:"workerId"`
	Spec     SearchSpec `json:"spec"`
	// Strategy and ShardCount describe the plan (informational).
	Strategy   string `json:"strategy"`
	ShardCount int    `json:"shardCount"`
	// OptionsHash is the plan's semantic-options fingerprint; the
	// worker recomputes it from Spec and refuses to run on mismatch.
	OptionsHash uint64 `json:"optionsHash"`
	// LeaseTTLMS is the lease duration; workers must heartbeat well
	// within it.
	LeaseTTLMS int64 `json:"leaseTtlMs"`
	// WantEvents tells the worker whether to forward trace events.
	WantEvents bool `json:"wantEvents,omitempty"`
}

// LeaseRequest asks for one shard of work.
type LeaseRequest struct {
	WorkerID string `json:"workerId"`
}

// Lease statuses.
const (
	// LeaseWork: Shard and LeaseID are set; run it.
	LeaseWork = "work"
	// LeaseWait: nothing grantable right now (all pending shards are
	// excluded for this worker, or everything is leased); poll again.
	LeaseWait = "wait"
	// LeaseDone: the search is complete; the worker should exit.
	LeaseDone = "done"
)

// LeaseResponse grants a shard (or tells the worker to wait/exit).
type LeaseResponse struct {
	Status  string        `json:"status"`
	Shard   *search.Shard `json:"shard,omitempty"`
	LeaseID string        `json:"leaseId,omitempty"`
}

// HeartbeatRequest keeps a worker's leases alive and piggybacks its
// telemetry delta since the previous heartbeat.
type HeartbeatRequest struct {
	WorkerID string   `json:"workerId"`
	LeaseIDs []string `json:"leaseIds,omitempty"`
	// Metrics is the counter-wise delta (obs.Snapshot.Sub) of the
	// worker's registry since its last successful heartbeat.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// HeartbeatResponse lists leases the worker must abandon (expired and
// requeued, or past the merge's cancellation horizon) and whether the
// search is over.
type HeartbeatResponse struct {
	Cancelled []string `json:"cancelled,omitempty"`
	Done      bool     `json:"done,omitempty"`
}

// ResultRequest posts a finished shard: either a report or a failure
// description (worker-side panic), never both.
type ResultRequest struct {
	WorkerID string         `json:"workerId"`
	LeaseID  string         `json:"leaseId"`
	Shard    int            `json:"shard"`
	Report   *search.Report `json:"report,omitempty"`
	Failure  string         `json:"failure,omitempty"`
}

// ResultResponse acknowledges a shard result. Accepted is false when
// the shard was already decided (a late result after the lease expired
// and a retry finished first); the worker just moves on.
type ResultResponse struct {
	Accepted bool `json:"accepted"`
	Done     bool `json:"done,omitempty"`
}

// StatusResponse is the coordinator's public progress summary.
type StatusResponse struct {
	Program   string `json:"program"`
	Strategy  string `json:"strategy"`
	Shards    int    `json:"shards"`
	Merged    int    `json:"merged"`
	Completed int    `json:"completed"`
	Abandoned int    `json:"abandoned"`
	Leased    int    `json:"leased"`
	Workers   int    `json:"workers"`
	Done      bool   `json:"done"`
}

// MetricsResponse is the coordinator's aggregated telemetry: its own
// registry (which includes every worker delta merged so far) plus the
// shard-level progress.
type MetricsResponse struct {
	Metrics obs.Snapshot   `json:"metrics"`
	Status  StatusResponse `json:"status"`
}
