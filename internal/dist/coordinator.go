package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"fairmc/internal/dist/transport"
	"fairmc/internal/engine"
	"fairmc/internal/faultinject"
	"fairmc/internal/obs"
	"fairmc/internal/search"
)

// Coordinator defaults.
const (
	// DefaultLeaseTTL is how long a granted or heartbeat-extended lease
	// stays valid.
	DefaultLeaseTTL = 15 * time.Second
	// DefaultMaxShardAttempts bounds how many workers may fail one
	// shard (lease expiry or posted failure) before it is abandoned.
	DefaultMaxShardAttempts = 3
	// DefaultMaxInflight is the load-shedding bound on concurrently
	// served requests.
	DefaultMaxInflight = 128
	// idemCacheSize bounds the idempotency-key → response cache
	// (FIFO); at one result per shard plus heartbeats in flight, 1024
	// comfortably outlives any retry window.
	idemCacheSize = 1024
)

// stateVersion is the coordinator state file format version.
const stateVersion = 1

// CoordinatorConfig configures a distributed search.
type CoordinatorConfig struct {
	// Prog is the program under test; Program its registry name (sent
	// to workers, which look the program up on their side).
	Prog    func(*engine.T)
	Program string
	// Options is the full search configuration, including budgets and
	// the confirmation pass. TimeLimit must be zero: a wall-clock
	// budget cannot be distributed deterministically.
	Options search.Options
	// RefParallelism selects which local run the merged report mirrors
	// (byte-identical to Parallelism=RefParallelism); it also sets the
	// shard granularity. 0 means 1.
	RefParallelism int
	// LeaseTTL and MaxShardAttempts tune the robustness machinery;
	// zero values use the defaults above.
	LeaseTTL         time.Duration
	MaxShardAttempts int
	// StatePath, when set, makes the coordinator durable: the state
	// file is rewritten (atomically, with a directory fsync) after
	// every shard completion, and a coordinator restarted with the
	// same config and StatePath resumes from it.
	StatePath string
	// MaxInflight bounds concurrently served requests; excess requests
	// are shed with 429 + Retry-After (which the worker transport's
	// backoff honors). 0 means DefaultMaxInflight.
	MaxInflight int
	// Chaos, when set, injects server-side faults (delays, drops) into
	// every request before it reaches the protocol handlers — the
	// deterministic chaos harness's server half.
	Chaos *faultinject.Injector
	// Prior, when set (and no StatePath state file is adopted), seeds
	// the coordinator with an existing plan and already-decided shards
	// — how the jobs layer hands WAL-replayed progress to a restarted
	// coordinator so ledger-completed shards are never re-explored.
	// The caller is responsible for the plan matching Options (the
	// jobs layer validates via OptionsHash before constructing it).
	Prior *Prior
	// OnShardGrant, when set, observes every lease grant (called under
	// the coordinator lock). The jobs layer records grants in the
	// ledger as an audit trail.
	OnShardGrant func(shard int, worker string)
	// OnShardDone, when set, is called under the coordinator lock
	// BEFORE a decided shard (completed report, or nil = abandoned) is
	// applied to the merge — the write-ahead point. If it returns an
	// error the decision is NOT applied: the jobs layer returns an
	// error when its ledger can no longer commit, and a shard decision
	// that isn't durable must not reach the merger, or a restart would
	// disagree with what this process reported.
	OnShardDone func(shard int, rep *search.Report, abandonedReason string) error
	// Metrics, when set, aggregates worker telemetry deltas and the
	// coordinator's own confirmation-pass work.
	Metrics *obs.Metrics
	// EventWriter, when set, receives the JSONL trace-event streams
	// workers forward (interleaved at batch granularity).
	EventWriter io.Writer
	// Logf, when set, receives one-line operational logs.
	Logf func(format string, args ...any)
}

type shardStatus int

const (
	shardPending shardStatus = iota
	shardLeased
	shardCompleted
	shardAbandoned
)

// Prior is pre-decided progress injected into a new coordinator (see
// CoordinatorConfig.Prior).
type Prior struct {
	// Plan is the shard plan the progress belongs to.
	Plan *search.Plan
	// Completed maps shard index → report; a nil report marks a shard
	// abandoned in a previous incarnation.
	Completed map[int]*search.Report
	// Failures carries forward prior worker failures (report context).
	Failures []search.WorkerFailure
	// Elapsed is exploration time already spent.
	Elapsed time.Duration
}

type shardState struct {
	status   shardStatus
	attempts int             // failed attempts (expiries + posted failures)
	excluded map[string]bool // workers that failed this shard
	leaseID  string          // current lease when status == shardLeased
}

type lease struct {
	id      string
	shard   int
	worker  string
	expires time.Time
}

// Coordinator owns the shard plan of one distributed search and
// serves the worker protocol. Create with NewCoordinator, mount
// Handler on an http.Server, and Wait for the merged report.
type Coordinator struct {
	cfg  CoordinatorConfig
	spec SearchSpec
	plan *search.Plan

	mu        sync.Mutex
	merger    *search.ShardMerger
	shards    []shardState
	leases    map[string]*lease
	completed map[int]*search.Report // nil entry: abandoned
	failures  []search.WorkerFailure
	workers   map[string]time.Time // last contact
	seq       int                  // id generator (workers and leases)

	// Idempotency cache: key → marshaled response, FIFO-bounded. A
	// retried (or chaos-duplicated) result/heartbeat POST replays the
	// original response instead of re-applying its effect. Guarded by
	// mu, like the state it protects.
	idem      map[string][]byte
	idemOrder []string

	start       time.Time
	prevElapsed time.Duration
	stateErr    string

	finished bool
	done     chan struct{}
	finalRep *search.Report

	// notified tracks which workers have been told the search is done,
	// so the serving process can linger until every worker has had the
	// chance to exit cleanly instead of slamming the listener shut.
	notified  map[string]bool
	drained   chan struct{}
	drainOnce sync.Once
}

// NewCoordinator plans the search (or resumes the plan from
// cfg.StatePath if a matching state file exists) and returns a
// coordinator ready to serve.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Prog == nil || cfg.Program == "" {
		return nil, errors.New("dist: coordinator needs Prog and Program")
	}
	if cfg.Options.TimeLimit != 0 {
		return nil, errors.New("dist: TimeLimit cannot be distributed deterministically; use MaxExecutions")
	}
	if cfg.RefParallelism < 1 {
		cfg.RefParallelism = 1
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxShardAttempts <= 0 {
		cfg.MaxShardAttempts = DefaultMaxShardAttempts
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	c := &Coordinator{
		cfg:       cfg,
		spec:      SpecFromOptions(cfg.Program, cfg.Options),
		leases:    map[string]*lease{},
		completed: map[int]*search.Report{},
		idem:      map[string][]byte{},
		workers:   map[string]time.Time{},
		start:     time.Now(),
		done:      make(chan struct{}),
		notified:  map[string]bool{},
		drained:   make(chan struct{}),
	}

	var st *coordState
	if cfg.StatePath != "" {
		loaded, err := loadState(cfg.StatePath)
		if err == nil {
			st = loaded
		} else if !errors.Is(err, errNoState) {
			return nil, err
		}
	}
	switch {
	case st != nil:
		if err := c.resumeFrom(st); err != nil {
			return nil, err
		}
	case cfg.Prior != nil && cfg.Prior.Plan != nil:
		// WAL-replayed progress from the jobs layer: adopt the recorded
		// plan (never re-plan — the plan is part of what was committed)
		// and the already-decided shards. A DPOR plan is recorded at its
		// single root shard and grows deterministically as decided
		// reports are re-offered, so decided indices beyond the recorded
		// plan are adopted too — the regrown plan will contain them.
		c.plan = cfg.Prior.Plan
		for idx, rep := range cfg.Prior.Completed {
			if idx >= 0 && (idx < len(c.plan.Shards) || cfg.Options.DPOR) {
				c.completed[idx] = rep
			}
		}
		c.failures = append(c.failures, cfg.Prior.Failures...)
		c.prevElapsed = cfg.Prior.Elapsed
	default:
		plan, err := search.PlanShards(cfg.Prog, cfg.Options, cfg.RefParallelism)
		if err != nil {
			return nil, err
		}
		c.plan = plan
	}
	c.merger = search.NewShardMerger(c.cfg.Options, c.plan)
	c.shards = make([]shardState, len(c.plan.Shards))
	for i := range c.shards {
		c.shards[i].excluded = map[string]bool{}
	}
	if len(c.completed) > 0 {
		// Re-offer the persisted shard reports in index order; the
		// merger reconstructs exactly the pre-crash merge state.
		idxs := make([]int, 0, len(c.completed))
		for idx := range c.completed {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			// Each re-offer may grow a DPOR plan; extend the lease state
			// first so the next index is in range. A shard's children
			// always spawn at higher indices, so index order re-offers
			// every decided shard after the offer that planned it.
			c.growShardsLocked()
			if idx >= len(c.shards) {
				delete(c.completed, idx) // not part of the (re)derived plan
				continue
			}
			rep := c.completed[idx]
			if rep == nil {
				c.shards[idx].status = shardAbandoned
			} else {
				c.shards[idx].status = shardCompleted
			}
			c.merger.Offer(idx, rep)
		}
		c.growShardsLocked()
		source := "prior progress"
		if st != nil {
			source = cfg.StatePath
		}
		c.cfg.Logf("dist: resumed from %s: %d/%d shards already decided",
			source, len(idxs), len(c.plan.Shards))
	}
	go c.sweep()
	c.mu.Lock()
	c.checkDoneLocked()
	c.mu.Unlock()
	return c, nil
}

// Handler returns the coordinator's HTTP handler (the worker protocol
// plus /metrics and /status), wrapped in the load-shedding middleware
// and, when configured, the server-side chaos injector (outermost, so
// injected faults hit before any coordinator logic — like a real
// network would).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathJoin, c.handleJoin)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathResult, c.handleResult)
	mux.HandleFunc(PathEvents, c.handleEvents)
	mux.HandleFunc(PathMetrics, c.handleMetrics)
	mux.HandleFunc(PathStatus, c.handleStatus)
	var h http.Handler = c.shedMiddleware(mux)
	if c.cfg.Chaos != nil {
		h = c.cfg.Chaos.Middleware(h)
	}
	return h
}

// shedMiddleware refuses requests beyond MaxInflight with 429 and a
// Retry-After the worker transport turns into its next backoff —
// graceful degradation instead of queue collapse under overload.
func (c *Coordinator) shedMiddleware(next http.Handler) http.Handler {
	max := c.cfg.MaxInflight
	if max <= 0 {
		max = DefaultMaxInflight
	}
	sem := make(chan struct{}, max)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			if m := c.cfg.Metrics; m != nil {
				m.ShedRequests.Inc()
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, "coordinator overloaded", http.StatusTooManyRequests)
		}
	})
}

// idemGetLocked returns the cached response for an idempotency key.
func (c *Coordinator) idemGetLocked(key string) ([]byte, bool) {
	data, ok := c.idem[key]
	return data, ok
}

// idemPutLocked caches a response under a key, evicting FIFO.
func (c *Coordinator) idemPutLocked(key string, data []byte) {
	if key == "" {
		return
	}
	if _, exists := c.idem[key]; !exists {
		c.idemOrder = append(c.idemOrder, key)
		if len(c.idemOrder) > idemCacheSize {
			delete(c.idem, c.idemOrder[0])
			c.idemOrder = c.idemOrder[1:]
		}
	}
	c.idem[key] = data
}

// replayJSON writes a cached idempotent response verbatim.
func replayJSON(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// Wait blocks until the search is complete (or interrupted) and
// returns the merged report.
func (c *Coordinator) Wait() *search.Report {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finalRep
}

// Done exposes completion to selects (e.g. alongside a signal channel).
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Drained is closed once the search is finished AND every joined
// worker has been handed a done response (lease, heartbeat, or result
// acknowledgement), so it can exit cleanly. A serving process should
// wait on it with a timeout after Wait — a crashed worker never polls
// again and would hold the drain open forever.
func (c *Coordinator) Drained() <-chan struct{} { return c.drained }

// noteDoneLocked records that a worker has observed completion.
func (c *Coordinator) noteDoneLocked(workerID string) {
	if workerID != "" {
		c.notified[workerID] = true
	}
	c.checkDrainedLocked()
}

func (c *Coordinator) checkDrainedLocked() {
	if !c.finished {
		return
	}
	for id := range c.workers {
		if !c.notified[id] {
			return
		}
	}
	c.drainOnce.Do(func() { close(c.drained) })
}

// Interrupt stops the search at the current merge point, marking the
// report Interrupted. Completed shards are already persisted (when
// StatePath is set), so a later coordinator run resumes from them.
func (c *Coordinator) Interrupt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return
	}
	c.finished = true
	c.checkDrainedLocked()
	rep := c.merger.Finish(c.prevElapsed+time.Since(c.start), c.failures)
	rep.Interrupted = true
	c.sealLocked(rep)
	c.saveStateLocked()
}

// Plan exposes the shard plan (for status displays and tests).
func (c *Coordinator) Plan() *search.Plan { return c.plan }

// checkDoneLocked finalizes the search once the merge is complete.
// The confirmation pass runs outside the lock (it executes the
// program), then sealLocked publishes the report.
func (c *Coordinator) checkDoneLocked() {
	if c.finished || !c.merger.Done() {
		return
	}
	c.finished = true
	c.checkDrainedLocked()
	rep := c.merger.Finish(c.prevElapsed+time.Since(c.start), c.failures)
	go func() {
		opts := c.cfg.Options
		opts.Metrics = c.cfg.Metrics
		search.ConfirmFindings(c.cfg.Prog, opts, rep)
		c.mu.Lock()
		c.sealLocked(rep)
		c.saveStateLocked()
		c.mu.Unlock()
	}()
}

// sealLocked publishes the final report and releases Wait.
func (c *Coordinator) sealLocked(rep *search.Report) {
	if rep.CheckpointError == "" && c.stateErr != "" {
		rep.CheckpointError = c.stateErr
	}
	c.finalRep = rep
	close(c.done)
}

// sweep expires leases in the background so crashed workers are
// detected even while no requests arrive.
func (c *Coordinator) sweep() {
	iv := c.cfg.LeaseTTL / 4
	if iv < 50*time.Millisecond {
		iv = 50 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(time.Now())
			c.mu.Unlock()
		}
	}
}

// expireLocked requeues the shards of every expired lease.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		c.cfg.Logf("dist: lease %s (shard %d, worker %s) expired", id, l.shard, l.worker)
		c.failShardLocked(l.shard, l.worker,
			fmt.Sprintf("lease expired after %s (worker %s unreachable)", c.cfg.LeaseTTL, l.worker))
	}
}

// failShardLocked records one failed attempt at a shard and requeues
// or abandons it. Already-decided shards are left alone (a lease can
// expire after a late result completed the shard).
func (c *Coordinator) failShardLocked(idx int, worker, reason string) {
	sh := &c.shards[idx]
	if sh.status == shardCompleted || sh.status == shardAbandoned {
		return
	}
	sh.attempts++
	sh.excluded[worker] = true
	sh.leaseID = ""
	c.failures = append(c.failures, search.WorkerFailure{
		Mode:    "dist",
		Unit:    int64(idx),
		Attempt: sh.attempts,
		Panic:   reason,
	})
	if m := c.cfg.Metrics; m != nil {
		m.WorkerRetries.Inc()
	}
	if sh.attempts >= c.cfg.MaxShardAttempts {
		if c.cfg.OnShardDone != nil {
			if err := c.cfg.OnShardDone(idx, nil, reason); err != nil {
				// The abandonment cannot be made durable; leave the shard
				// pending rather than let memory outrun the ledger. (The
				// jobs layer only fails the hook when its ledger is dead,
				// at which point this coordinator is on its way out.)
				c.cfg.Logf("dist: shard %d abandonment not committed: %v", idx, err)
				sh.status = shardPending
				return
			}
		}
		sh.status = shardAbandoned
		c.completed[idx] = nil
		c.merger.Offer(idx, nil)
		c.growShardsLocked()
		c.cfg.Logf("dist: shard %d abandoned after %d attempts", idx, sh.attempts)
		c.saveStateLocked()
		c.checkDoneLocked()
		return
	}
	sh.status = shardPending
}

// completeShardLocked accepts a shard report, persists it, and feeds
// the merger. It reports whether the completion was applied: the
// write-ahead hook (OnShardDone) can veto it when the decision cannot
// be made durable.
func (c *Coordinator) completeShardLocked(idx int, rep *search.Report) bool {
	sh := &c.shards[idx]
	if c.cfg.OnShardDone != nil {
		if err := c.cfg.OnShardDone(idx, rep, ""); err != nil {
			c.cfg.Logf("dist: shard %d completion not committed: %v", idx, err)
			sh.status = shardPending
			sh.leaseID = ""
			return false
		}
	}
	sh.status = shardCompleted
	sh.leaseID = ""
	c.completed[idx] = rep
	c.merger.Offer(idx, rep)
	c.growShardsLocked()
	if m := c.cfg.Metrics; m != nil {
		m.Frontier.Set(int64(len(c.plan.Shards) - c.merger.Merged()))
	}
	c.saveStateLocked()
	c.checkDoneLocked()
	return true
}

// growShardsLocked extends the per-shard lease state to cover shards
// the merger appended to the plan (DPOR work-unit spawns). Must run
// after every merger.Offer so newly planned shards become leasable.
func (c *Coordinator) growShardsLocked() {
	for len(c.shards) < len(c.plan.Shards) {
		c.shards = append(c.shards, shardState{excluded: map[string]bool{}})
	}
}

func (c *Coordinator) nextID(prefix string) string {
	c.seq++
	return fmt.Sprintf("%s%d", prefix, c.seq)
}

// --- HTTP handlers ---

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	id := c.nextID("w")
	c.workers[id] = time.Now()
	// DPOR plans grow under the lock as units spawn children; the count
	// is a snapshot (informational — leases carry the actual work).
	shardCount := len(c.plan.Shards)
	c.mu.Unlock()
	c.cfg.Logf("dist: worker %s joined (capacity %d)", id, req.Capacity)
	writeJSON(w, JoinResponse{
		WorkerID:    id,
		Spec:        c.spec,
		Strategy:    c.plan.Strategy,
		ShardCount:  shardCount,
		OptionsHash: c.plan.OptionsHash,
		LeaseTTLMS:  int64(c.cfg.LeaseTTL / time.Millisecond),
		WantEvents:  c.cfg.EventWriter != nil,
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[req.WorkerID] = time.Now()
	c.expireLocked(time.Now())
	if c.finished {
		c.noteDoneLocked(req.WorkerID)
		writeJSON(w, LeaseResponse{Status: LeaseDone})
		return
	}
	horizon := c.merger.Horizon()
	undecided := false
	for idx := 0; idx < horizon; idx++ {
		sh := &c.shards[idx]
		switch sh.status {
		case shardPending:
			undecided = true
			if sh.excluded[req.WorkerID] {
				continue
			}
			l := &lease{
				id:      c.nextID("l"),
				shard:   idx,
				worker:  req.WorkerID,
				expires: time.Now().Add(c.cfg.LeaseTTL),
			}
			c.leases[l.id] = l
			sh.status = shardLeased
			sh.leaseID = l.id
			if c.cfg.OnShardGrant != nil {
				c.cfg.OnShardGrant(idx, req.WorkerID)
			}
			shard := c.plan.Shards[idx]
			writeJSON(w, LeaseResponse{Status: LeaseWork, Shard: &shard, LeaseID: l.id})
			return
		case shardLeased:
			undecided = true
		}
	}
	if undecided {
		writeJSON(w, LeaseResponse{Status: LeaseWait})
		return
	}
	// Every shard below the horizon is decided; the merge either
	// finished already or is waiting on nothing.
	c.noteDoneLocked(req.WorkerID)
	writeJSON(w, LeaseResponse{Status: LeaseDone})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	key := r.Header.Get(transport.IdempotencyKeyHeader)
	c.mu.Lock()
	defer c.mu.Unlock()
	if key != "" {
		if data, ok := c.idemGetLocked(key); ok {
			// Retried or duplicated delivery: the metrics delta was
			// already merged once; replay the original answer.
			replayJSON(w, data)
			return
		}
	}
	if req.Metrics != nil && c.cfg.Metrics != nil {
		c.cfg.Metrics.Merge(*req.Metrics)
	}
	c.workers[req.WorkerID] = time.Now()
	c.expireLocked(time.Now())
	resp := HeartbeatResponse{Done: c.finished}
	horizon := c.merger.Horizon()
	for _, id := range req.LeaseIDs {
		l, ok := c.leases[id]
		if !ok || l.worker != req.WorkerID {
			// Expired and requeued (or never ours): the worker must
			// abandon the shard; its late result would be rejected
			// only if another attempt finishes first.
			resp.Cancelled = append(resp.Cancelled, id)
			continue
		}
		if l.shard >= horizon || c.finished {
			// Dead work: past the merge's stop point.
			delete(c.leases, id)
			resp.Cancelled = append(resp.Cancelled, id)
			continue
		}
		l.expires = time.Now().Add(c.cfg.LeaseTTL)
	}
	if resp.Done {
		c.noteDoneLocked(req.WorkerID)
	}
	c.writeIdemLocked(w, key, resp)
}

// writeIdemLocked writes a JSON response and caches it under the
// request's idempotency key (no-op for keyless requests).
func (c *Coordinator) writeIdemLocked(w http.ResponseWriter, key string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	c.idemPutLocked(key, data)
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	key := r.Header.Get(transport.IdempotencyKeyHeader)
	c.mu.Lock()
	defer c.mu.Unlock()
	if key != "" {
		if data, ok := c.idemGetLocked(key); ok {
			// A retried or chaos-duplicated submission of a result the
			// coordinator already processed: replay the original
			// acknowledgement; the merge consumed exactly one report.
			replayJSON(w, data)
			return
		}
	}
	c.workers[req.WorkerID] = time.Now()
	if req.LeaseID == "" && req.Failure != "" {
		// Advisory failure: no lease, so nothing to requeue and nobody
		// to blame — record it for the report without charging a shard
		// attempt or excluding the worker. This is how corrupt spool
		// entries are surfaced (failing the replay, or livelocking a
		// single-worker search by self-exclusion, would punish the
		// messenger).
		c.failures = append(c.failures, search.WorkerFailure{
			Mode:    "dist",
			Unit:    int64(req.Shard),
			Attempt: 0,
			Panic:   req.Failure,
		})
		c.cfg.Logf("dist: advisory failure from worker %s: %.160s", req.WorkerID, req.Failure)
		if c.finished {
			c.noteDoneLocked(req.WorkerID)
		}
		c.writeIdemLocked(w, key, ResultResponse{Accepted: true, Done: c.finished})
		return
	}
	if req.Shard < 0 || req.Shard >= len(c.shards) {
		http.Error(w, "unknown shard", http.StatusBadRequest)
		return
	}
	if l, ok := c.leases[req.LeaseID]; ok && l.shard == req.Shard {
		delete(c.leases, req.LeaseID)
	}
	defer func() {
		if c.finished {
			c.noteDoneLocked(req.WorkerID)
		}
	}()
	sh := &c.shards[req.Shard]
	if sh.status == shardCompleted || sh.status == shardAbandoned || c.finished {
		// Late result: the shard was requeued and decided by another
		// attempt, or the search is over. Determinism is unaffected
		// either way — the merge consumed exactly one report.
		c.writeIdemLocked(w, key, ResultResponse{Accepted: false, Done: c.finished})
		return
	}
	if req.Failure != "" || req.Report == nil {
		reason := req.Failure
		if reason == "" {
			reason = "worker posted an empty result"
		}
		c.cfg.Logf("dist: shard %d failed on worker %s: %s", req.Shard, req.WorkerID, reason)
		c.failShardLocked(req.Shard, req.WorkerID, reason)
		c.writeIdemLocked(w, key, ResultResponse{Accepted: true, Done: c.finished})
		return
	}
	if req.Report.Interrupted {
		// A cancelled shard must not be merged; treat it as if the
		// lease had lapsed, without excluding the worker.
		sh.status = shardPending
		sh.leaseID = ""
		c.writeIdemLocked(w, key, ResultResponse{Accepted: false, Done: c.finished})
		return
	}
	if !c.completeShardLocked(req.Shard, req.Report) {
		// The write-ahead hook refused (ledger can't commit). Not
		// cached under the idempotency key: a retried upload may land
		// after durability recovers.
		http.Error(w, "shard completion not committed", http.StatusServiceUnavailable)
		return
	}
	c.cfg.Logf("dist: shard %d completed by worker %s (%d/%d merged)",
		req.Shard, req.WorkerID, c.merger.Merged(), len(c.plan.Shards))
	c.writeIdemLocked(w, key, ResultResponse{Accepted: true, Done: c.finished})
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if c.cfg.EventWriter != nil && len(data) > 0 {
		c.mu.Lock()
		_, werr := c.cfg.EventWriter.Write(data)
		c.mu.Unlock()
		if werr != nil {
			http.Error(w, werr.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) statusLocked() StatusResponse {
	st := StatusResponse{
		Program:  c.cfg.Program,
		Strategy: c.plan.Strategy,
		Shards:   len(c.plan.Shards),
		Merged:   c.merger.Merged(),
		Leased:   len(c.leases),
		Workers:  len(c.workers),
		Done:     c.finished,
	}
	for _, rep := range c.completed {
		if rep == nil {
			st.Abandoned++
		} else {
			st.Completed++
		}
	}
	return st
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	st := c.statusLocked()
	c.mu.Unlock()
	writeJSON(w, st)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap obs.Snapshot
	if c.cfg.Metrics != nil {
		snap = c.cfg.Metrics.Snapshot()
	}
	c.mu.Lock()
	st := c.statusLocked()
	c.mu.Unlock()
	writeJSON(w, MetricsResponse{Metrics: snap, Status: st})
}

// --- durable state ---

// coordState is the coordinator's durable progress: the plan plus
// every decided shard. It deliberately rides on the checkpoint
// machinery's identity fields so a resume with a different program,
// seed, or options is rejected exactly like a checkpoint mismatch.
type coordState struct {
	Version        int                    `json:"version"`
	Program        string                 `json:"program"`
	Strategy       string                 `json:"strategy"`
	Seed           uint64                 `json:"seed"`
	OptionsHash    uint64                 `json:"optionsHash"`
	RefParallelism int                    `json:"refParallelism"`
	Plan           *search.Plan           `json:"plan"`
	Results        []shardResult          `json:"results,omitempty"`
	Failures       []search.WorkerFailure `json:"failures,omitempty"`
	ElapsedNS      int64                  `json:"elapsedNs"`
	Done           bool                   `json:"done,omitempty"`
}

// shardResult is one decided shard; a nil Report marks abandonment.
type shardResult struct {
	Index  int            `json:"index"`
	Report *search.Report `json:"report,omitempty"`
}

var errNoState = errors.New("dist: no state file")

func loadState(path string) (*coordState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, errNoState
		}
		return nil, fmt.Errorf("dist: reading state file: %w", err)
	}
	st := &coordState{}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("dist: decoding state file %s: %w", path, err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("dist: state file %s has version %d, this build reads %d",
			path, st.Version, stateVersion)
	}
	return st, nil
}

// resumeFrom validates a loaded state file against the configuration
// and adopts its plan and decided shards.
func (c *Coordinator) resumeFrom(st *coordState) error {
	if st.Done {
		return fmt.Errorf("dist: state file records a completed search; delete it to start over")
	}
	opts := c.cfg.Options
	if st.Program != c.cfg.Program ||
		st.Seed != opts.Seed ||
		st.OptionsHash != search.OptionsHash(&opts) ||
		st.Strategy != search.StrategyName(&opts) {
		return fmt.Errorf("dist: state file belongs to a different search (program %q strategy %s seed %d)",
			st.Program, st.Strategy, st.Seed)
	}
	if st.RefParallelism != c.cfg.RefParallelism {
		return fmt.Errorf("dist: state file was planned for -p %d, got -p %d (the shard plan depends on it)",
			st.RefParallelism, c.cfg.RefParallelism)
	}
	if st.Plan == nil || len(st.Plan.Shards) == 0 {
		return errors.New("dist: state file has no shard plan")
	}
	c.plan = st.Plan
	for _, sr := range st.Results {
		if sr.Index >= 0 && sr.Index < len(c.plan.Shards) {
			c.completed[sr.Index] = sr.Report
		}
	}
	c.failures = append(c.failures, st.Failures...)
	c.prevElapsed = time.Duration(st.ElapsedNS)
	return nil
}

// saveStateLocked persists progress; failures are recorded (and
// surfaced as the report's CheckpointError), not fatal — losing
// resumability is better than losing the run.
func (c *Coordinator) saveStateLocked() {
	if c.cfg.StatePath == "" {
		return
	}
	opts := c.cfg.Options
	st := coordState{
		Version:        stateVersion,
		Program:        c.cfg.Program,
		Strategy:       search.StrategyName(&opts),
		Seed:           opts.Seed,
		OptionsHash:    search.OptionsHash(&opts),
		RefParallelism: c.cfg.RefParallelism,
		Plan:           c.plan,
		Failures:       c.failures,
		ElapsedNS:      int64(c.prevElapsed + time.Since(c.start)),
		// An interrupted search stays resumable; only a genuine
		// completion seals the state file.
		Done: c.finalRep != nil && !c.finalRep.Interrupted,
	}
	idxs := make([]int, 0, len(c.completed))
	for idx := range c.completed {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		st.Results = append(st.Results, shardResult{Index: idx, Report: c.completed[idx]})
	}
	data, err := json.Marshal(&st)
	if err == nil {
		err = search.AtomicWriteFile(c.cfg.StatePath, data)
	}
	if err != nil && c.stateErr == "" {
		c.stateErr = fmt.Sprintf("dist: writing state file: %v", err)
		c.cfg.Logf("%s", c.stateErr)
	}
	if err == nil {
		if m := c.cfg.Metrics; m != nil {
			m.Checkpoints.Inc()
		}
	}
}
