package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"fairmc/internal/dist"
	"fairmc/internal/dist/transport"
	"fairmc/internal/engine"
	"fairmc/internal/fsx"
	"fairmc/internal/obs"
)

// DefaultPoll is how often an idle pool worker asks the service for an
// assignment.
const DefaultPoll = 200 * time.Millisecond

// assignFailureBudget is how many consecutive assign failures a pool
// worker rides out (a restarting service) before giving up.
const assignFailureBudget = 100

// PoolConfig configures RunPoolWorker.
type PoolConfig struct {
	// URL is the service base URL (e.g. http://host:7171).
	URL string
	// Capacity is per-job shard concurrency (see dist.WorkerConfig).
	Capacity int
	// WorkDir holds per-JOB subdirectories of checkpoints and result
	// spools — jobs reuse shard indices, so sharing one directory
	// across jobs would collide. Empty disables both.
	WorkDir string
	// Lookup resolves program names to program bodies.
	Lookup func(name string) (func(*engine.T), bool)
	// Metrics, when set, is the worker's live registry.
	Metrics *obs.Metrics
	// Logf, when set, receives one-line operational logs.
	Logf func(format string, args ...any)
	// Stop, when closed, makes the worker finish its current leases and
	// return nil.
	Stop <-chan struct{}
	// Poll overrides DefaultPoll.
	Poll time.Duration

	// Retry / JoinTimeout / Transport / FS pass through to each job's
	// dist.RunWorker session (Transport also carries assign polls).
	Retry       transport.Policy
	JoinTimeout time.Duration
	Transport   http.RoundTripper
	FS          fsx.FS
}

// RunPoolWorker serves a jobs service: it polls /v1/assign, joins
// whichever job's coordinator the service points it at, explores until
// that job completes, and comes back for the next one. It returns nil
// when cfg.Stop closes, and an error only when the service stays
// unreachable past the failure budget or a job rejects this worker's
// build (spec mismatch).
func RunPoolWorker(cfg PoolConfig) error {
	if cfg.Lookup == nil {
		return errors.New("jobs: pool worker needs a program Lookup")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	httpc := &http.Client{Timeout: 5 * time.Second}
	if cfg.Transport != nil {
		httpc.Transport = cfg.Transport
	}

	failures := 0
	for {
		select {
		case <-cfg.Stop:
			return nil
		default:
		}

		asn, err := assign(httpc, cfg.URL)
		if err != nil {
			failures++
			if failures >= assignFailureBudget {
				return fmt.Errorf("jobs: service unreachable after %d assign attempts: %w", failures, err)
			}
			if !sleepStop(cfg.Poll, cfg.Stop) {
				return nil
			}
			continue
		}
		failures = 0

		if asn.Status != AssignWork {
			if !sleepStop(cfg.Poll, cfg.Stop) {
				return nil
			}
			continue
		}

		workDir := ""
		if cfg.WorkDir != "" {
			workDir = filepath.Join(cfg.WorkDir, asn.JobID)
		}
		logf("pool: assigned to %s", asn.JobID)
		err = dist.RunWorker(dist.WorkerConfig{
			URL:         cfg.URL + asn.Path,
			Capacity:    cfg.Capacity,
			WorkDir:     workDir,
			Lookup:      cfg.Lookup,
			Metrics:     cfg.Metrics,
			Logf:        cfg.Logf,
			Stop:        cfg.Stop,
			Retry:       cfg.Retry,
			JoinTimeout: cfg.JoinTimeout,
			Transport:   cfg.Transport,
			FS:          cfg.FS,
		})
		switch {
		case err == nil:
			// Job finished (or Stop closed); ask for the next one.
		case errors.Is(err, dist.ErrSpecMismatch):
			// Version skew is not transient; retrying other jobs from the
			// same build would just thrash.
			return err
		default:
			// A job unmounting mid-session (cancelled, or the service
			// restarted) looks like an unreachable coordinator; the
			// worker is still healthy — go get another assignment.
			logf("pool: session on %s ended: %v", asn.JobID, err)
			if !sleepStop(cfg.Poll, cfg.Stop) {
				return nil
			}
		}
	}
}

// assign asks the service which job this worker should serve.
func assign(httpc *http.Client, base string) (*AssignResponse, error) {
	resp, err := httpc.Get(base + PathAssign)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("assign: HTTP %d", resp.StatusCode)
	}
	var asn AssignResponse
	if err := json.NewDecoder(resp.Body).Decode(&asn); err != nil {
		return nil, fmt.Errorf("assign: decoding response: %w", err)
	}
	return &asn, nil
}

// sleepStop pauses for d, cut short (returning false) by stop.
func sleepStop(d time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}
