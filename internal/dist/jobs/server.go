// Package jobs is the durable checking service: a multi-job layer
// above the dist coordinator with a submit/status/cancel/artifacts
// HTTP API, backed by the internal/ledger write-ahead log so a
// kill -9'd service restarts, replays the WAL, re-queues unfinished
// jobs, re-leases only shards without a committed completion, and
// still produces merged reports byte-identical to an uninterrupted
// local -p N run. Completed jobs are served from the ledger without
// re-exploration.
//
// Concurrency and commit discipline:
//
//   - Every state transition is WAL-first: the ledger record is
//     appended (fsynced for commit points) BEFORE the in-memory state
//     changes, via the coordinator's OnShardDone veto hook and the
//     server's own commit helper. A crash between commit and apply is
//     repaired by replay; a crash between apply and commit cannot
//     happen.
//   - Lock order: a coordinator's internal lock may be taken before
//     the server lock (the OnShardDone hook does this), NEVER the
//     reverse — server code releases s.mu before calling into a
//     coordinator (Interrupt, Wait).
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"fairmc"
	"fairmc/internal/dist"
	"fairmc/internal/engine"
	"fairmc/internal/fsx"
	"fairmc/internal/ledger"
	"fairmc/internal/obs"
	"fairmc/internal/search"
)

// Service defaults.
const (
	// DefaultMaxActive is how many jobs explore concurrently; queued
	// jobs beyond it wait (workers are shared, so more active jobs
	// means slower jobs, not more throughput).
	DefaultMaxActive = 2
	// DefaultMaxJobs bounds admission: queued+running jobs beyond it
	// are refused with 429 + Retry-After.
	DefaultMaxJobs = 64
	// DefaultDrainGrace is how long a finished job's coordinator
	// lingers mounted so polling workers observe completion and move
	// to their next assignment.
	DefaultDrainGrace = 2 * time.Second
)

// Config configures New.
type Config struct {
	// Dir is the ledger directory (created if missing).
	Dir string
	// Lookup resolves program names to program bodies; submissions
	// naming unknown programs are rejected at admission.
	Lookup func(name string) (func(*engine.T), bool)
	// MaxActive bounds concurrently exploring jobs; 0 means
	// DefaultMaxActive.
	MaxActive int
	// MaxJobs bounds queued+running jobs; 0 means DefaultMaxJobs.
	MaxJobs int
	// LeaseTTL / MaxShardAttempts / MaxInflight tune each job's
	// coordinator (see dist.CoordinatorConfig); zero values use the
	// dist defaults.
	LeaseTTL         time.Duration
	MaxShardAttempts int
	MaxInflight      int
	// SegmentBytes overrides the ledger segment rotation threshold
	// (tests use small values to exercise rotation).
	SegmentBytes int64
	// DrainGrace overrides DefaultDrainGrace.
	DrainGrace time.Duration
	// FS substitutes the filesystem (fault injection); nil = real.
	FS fsx.FS
	// Metrics, when set, receives service and ledger counters and each
	// job's aggregated worker telemetry.
	Metrics *obs.Metrics
	// Logf, when set, receives one-line operational logs.
	Logf func(format string, args ...any)

	// crashHook, when set (tests only), observes every WAL commit
	// point; returning true freezes the ledger — the disk's view of
	// kill -9 at exactly that point. Points are named "pre:<op>" and
	// "post:<op>" around each append.
	crashHook func(point string) bool
}

// job is the server-side state of one submission: the replayed core
// plus runtime wiring while running.
type job struct {
	jobState
	decided         int // shards decided this incarnation + replayed
	cancelRequested bool
	coord           *dist.Coordinator
	handler         http.Handler
}

// Server is the durable checking service. Create with New, mount
// Handler, Close when done.
type Server struct {
	cfg Config
	led *ledger.Ledger

	mu          sync.Mutex
	jobs        map[string]*job
	order       []string // submission order
	queue       []string // queued job ids, FIFO
	activeIDs   []string // mounted (running) job ids
	nextJob     int
	nonTerminal int
	rr          int // round-robin cursor for assign
	quarantined int
	badRecs     []string
	closed      bool

	wg sync.WaitGroup
}

// New opens (or recovers) the service ledger in cfg.Dir, replays it,
// re-queues unfinished jobs, and returns a serving-ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Lookup == nil {
		return nil, errors.New("jobs: Config.Lookup is required")
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = DefaultMaxActive
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = DefaultDrainGrace
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	led, rec, err := ledger.Open(cfg.Dir, ledger.Options{
		FS:           cfg.FS,
		SegmentBytes: cfg.SegmentBytes,
		Metrics:      cfg.Metrics,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("jobs: opening ledger: %w", err)
	}
	st := rebuild(rec.Records)
	s := &Server{
		cfg:         cfg,
		led:         led,
		jobs:        map[string]*job{},
		nextJob:     st.maxJob + 1,
		quarantined: len(rec.Quarantined),
		badRecs:     st.badRecs,
	}
	for _, q := range rec.Quarantined {
		cfg.Logf("jobs: ledger segment %s quarantined (offset %d: %s)", q.Segment, q.Offset, q.Reason)
	}
	for _, msg := range st.badRecs {
		cfg.Logf("jobs: unreadable WAL record: %s", msg)
	}
	for _, id := range st.order {
		js := st.jobs[id]
		j := &job{jobState: *js, decided: len(js.Completed)}
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
	pend := st.pending()
	for _, js := range pend {
		j := s.jobs[js.ID]
		j.State = StateQueued
		s.queue = append(s.queue, js.ID)
		s.nonTerminal++
		if len(j.Completed) > 0 {
			cfg.Logf("jobs: %s re-queued with %d/%d shards already committed",
				js.ID, len(j.Completed), planShardCount(j.Plan))
		}
	}
	if _, err := led.Append(recServerStart, serverStartRec{Jobs: len(pend)}, true); err != nil {
		led.Close()
		return nil, fmt.Errorf("jobs: recording server start: %w", err)
	}
	s.mu.Lock()
	s.scheduleLocked()
	s.mu.Unlock()
	return s, nil
}

func planShardCount(p *search.Plan) int {
	if p == nil {
		return 0
	}
	return len(p.Shards)
}

// commit appends one WAL record, with the crash hook around it.
func (s *Server) commit(point, typ string, v any, sync bool) error {
	if h := s.cfg.crashHook; h != nil && h("pre:"+point) {
		s.led.Freeze()
	}
	_, err := s.led.Append(typ, v, sync)
	if h := s.cfg.crashHook; h != nil && h("post:"+point) {
		s.led.Freeze()
	}
	return err
}

// scheduleLocked promotes queued jobs into the free active slots.
func (s *Server) scheduleLocked() {
	if s.closed {
		return
	}
	for len(s.activeIDs) < s.cfg.MaxActive && len(s.queue) > 0 {
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		if j == nil || j.State != StateQueued {
			continue
		}
		j.State = StateRunning
		// Reserve the slot before the goroutine mounts, so the loop
		// cannot over-promote.
		s.activeIDs = append(s.activeIDs, id)
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// unmountLocked removes a job from the active set.
func (s *Server) unmountLocked(id string) {
	for i, a := range s.activeIDs {
		if a == id {
			s.activeIDs = append(s.activeIDs[:i], s.activeIDs[i+1:]...)
			break
		}
	}
	if j := s.jobs[id]; j != nil {
		j.coord = nil
		j.handler = nil
	}
}

// runJob plans (first incarnation), builds the coordinator seeded
// with WAL-replayed progress, serves it until the merge completes,
// and commits the terminal record. Runs without s.mu except where
// noted.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	id := j.ID

	prog, ok := s.cfg.Lookup(j.Spec.Program)
	if !ok {
		// Admission validates programs, so this only happens when a
		// restarted service binary lost a program the WAL still names.
		s.failJob(j, fmt.Sprintf("program %q not available in this service build", j.Spec.Program))
		return
	}
	// ConfirmRuns lives outside the spec (workers never confirm); the
	// service-side coordinator runs the confirmation pass, so the
	// report matches a local run with the same -confirm.
	opts := j.Spec.Options()
	opts.ConfirmRuns = j.ConfirmRuns

	if j.Plan == nil {
		plan, err := search.PlanShards(prog, opts, j.RefParallelism)
		if err != nil {
			s.failJob(j, fmt.Sprintf("planning: %v", err))
			return
		}
		if err := s.commit("plan:"+id, recPlan, planRec{
			Job: id, OptionsHash: plan.OptionsHash, Plan: plan,
		}, true); err != nil {
			s.abortIncarnation(j, fmt.Errorf("committing plan: %w", err))
			return
		}
		s.mu.Lock()
		j.Plan = plan
		j.OptionsHash = plan.OptionsHash
		s.mu.Unlock()
	}

	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Prog:             prog,
		Program:          j.Spec.Program,
		Options:          opts,
		RefParallelism:   j.RefParallelism,
		LeaseTTL:         s.cfg.LeaseTTL,
		MaxShardAttempts: s.cfg.MaxShardAttempts,
		MaxInflight:      s.cfg.MaxInflight,
		Prior:            j.prior(),
		OnShardGrant: func(shard int, worker string) {
			// Audit trail; unsynced, loss is harmless.
			s.commit(fmt.Sprintf("grant:%s#%d", id, shard), recGrant,
				grantRec{Job: id, Shard: shard, Worker: worker}, false)
		},
		OnShardDone: func(shard int, rep *search.Report, abandoned string) error {
			// THE commit point: a shard decision reaches the merger
			// only after it is durable. An error here vetoes the
			// decision in the coordinator.
			if err := s.commit(fmt.Sprintf("shard_done:%s#%d", id, shard), recShardDone, shardDoneRec{
				Job: id, OptionsHash: j.OptionsHash, Shard: shard,
				Report: rep, Abandoned: abandoned,
			}, true); err != nil {
				return err
			}
			s.mu.Lock()
			j.decided++
			s.mu.Unlock()
			return nil
		},
		Metrics: s.cfg.Metrics,
		Logf: func(format string, args ...any) {
			s.cfg.Logf("%s: "+format, append([]any{id}, args...)...)
		},
	})
	if err != nil {
		s.failJob(j, fmt.Sprintf("building coordinator: %v", err))
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		coord.Interrupt()
		coord.Wait()
		return
	}
	j.coord = coord
	j.handler = http.StripPrefix(PathJobPrefix+id, coord.Handler())
	cancelled := j.cancelRequested
	s.mu.Unlock()
	if cancelled {
		coord.Interrupt()
	}
	s.cfg.Logf("jobs: %s running (%d shards, %d already committed)",
		id, planShardCount(j.Plan), len(j.Completed))

	rep := coord.Wait()

	s.mu.Lock()
	wasCancelled := j.cancelRequested
	closed := s.closed
	s.mu.Unlock()

	switch {
	case wasCancelled:
		s.finishJob(j, rep, StateCancelled, "")
	case rep.Interrupted || closed:
		// Service shutdown, not job completion: leave the job's WAL
		// state as-is; the next incarnation re-queues and resumes it.
		s.mu.Lock()
		s.unmountLocked(id)
		s.mu.Unlock()
	default:
		s.finishJob(j, rep, StateDone, "")
	}
}

// finishJob commits a job's terminal record, updates memory, lingers
// for the drain grace, and frees the slot.
func (s *Server) finishJob(j *job, rep *search.Report, state, errMsg string) {
	id := j.ID
	var runReport []byte
	if state == StateDone {
		ropts := j.Spec.Options()
		ropts.ConfirmRuns = j.ConfirmRuns
		data, err := fairmc.ResultFromReport(rep).RunReport(j.Spec.Program, ropts).Encode()
		if err != nil {
			state = StateFailed
			errMsg = fmt.Sprintf("encoding run report: %v", err)
		} else {
			runReport = data
		}
	}
	if err := s.commit("done:"+id, recDone, doneRec{
		Job: id, State: state, Error: errMsg, Report: rep, RunReport: runReport,
	}, true); err != nil {
		s.abortIncarnation(j, fmt.Errorf("committing terminal state: %w", err))
		return
	}
	s.mu.Lock()
	j.State = state
	j.Error = errMsg
	j.Report = rep
	j.RunReport = runReport
	s.nonTerminal--
	if m := s.cfg.Metrics; m != nil {
		switch state {
		case StateCancelled:
			m.JobsCancelled.Inc()
		default:
			m.JobsDone.Inc()
		}
	}
	coordMounted := j.coord != nil
	s.mu.Unlock()
	s.cfg.Logf("jobs: %s %s", id, state)

	if coordMounted {
		// Linger so polling workers observe Done and move on.
		select {
		case <-j.coord.Drained():
		case <-time.After(s.cfg.DrainGrace):
		}
	}
	s.mu.Lock()
	s.unmountLocked(id)
	s.scheduleLocked()
	s.mu.Unlock()
}

// failJob records an infrastructure failure (unknown program, planning
// error) as the job's terminal state.
func (s *Server) failJob(j *job, reason string) {
	s.cfg.Logf("jobs: %s failed: %s", j.ID, reason)
	s.finishJob(j, nil, StateFailed, reason)
}

// abortIncarnation handles a WAL that can no longer commit (disk gone,
// or the crash harness froze it): the job stays non-terminal in the
// ledger, so a restarted service resumes it; this incarnation just
// unmounts it.
func (s *Server) abortIncarnation(j *job, err error) {
	s.cfg.Logf("jobs: %s: ledger cannot commit, leaving job for restart: %v", j.ID, err)
	s.mu.Lock()
	s.unmountLocked(j.ID)
	s.mu.Unlock()
}

// Close interrupts running jobs (they stay resumable in the ledger)
// and closes the ledger. The crash harness skips Close — that is the
// point.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var coords []*dist.Coordinator
	for _, id := range s.activeIDs {
		if j := s.jobs[id]; j != nil && j.coord != nil {
			coords = append(coords, j.coord)
		}
	}
	s.mu.Unlock()
	for _, c := range coords {
		c.Interrupt()
	}
	s.wg.Wait()
	return s.led.Close()
}

// --- HTTP API ---

// Handler returns the service's HTTP handler: the jobs API, the
// assign endpoint, per-job coordinator mounts, and status/metrics —
// wrapped in load shedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathJobs, s.handleJobs)
	mux.HandleFunc(PathJobs+"/", s.handleJob)
	mux.HandleFunc(PathAssign, s.handleAssign)
	mux.HandleFunc(PathJobPrefix, s.handleJobProxy)
	mux.HandleFunc(PathStatus, s.handleStatus)
	mux.HandleFunc(PathMetrics, s.handleMetrics)
	return s.shedMiddleware(mux)
}

// shedMiddleware bounds concurrently served requests, refusing the
// excess with 429 + Retry-After (the same degradation contract as the
// coordinator's).
func (s *Server) shedMiddleware(next http.Handler) http.Handler {
	max := s.cfg.MaxInflight
	if max <= 0 {
		max = dist.DefaultMaxInflight
	}
	sem := make(chan struct{}, max)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			if m := s.cfg.Metrics; m != nil {
				m.ShedRequests.Inc()
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, "service overloaded", http.StatusTooManyRequests)
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleJobs serves POST /v1/jobs (submit) and GET /v1/jobs (list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.mu.Lock()
		resp := ListResponse{Jobs: make([]JobStatus, 0, len(s.order))}
		for _, id := range s.order {
			resp.Jobs = append(resp.Jobs, s.statusLocked(s.jobs[id]))
		}
		s.mu.Unlock()
		writeJSON(w, resp)
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Spec.Program == "" {
		http.Error(w, "spec.program is required", http.StatusBadRequest)
		return
	}
	if _, ok := s.cfg.Lookup(req.Spec.Program); !ok {
		http.Error(w, fmt.Sprintf("unknown program %q", req.Spec.Program), http.StatusBadRequest)
		return
	}
	if req.RefParallelism < 1 {
		req.RefParallelism = 1
	}

	s.mu.Lock()
	if s.nonTerminal >= s.cfg.MaxJobs {
		s.mu.Unlock()
		if m := s.cfg.Metrics; m != nil {
			m.JobsShed.Inc()
		}
		w.Header().Set("Retry-After", "5")
		http.Error(w, "job queue full", http.StatusTooManyRequests)
		return
	}
	id := fmt.Sprintf("j%d", s.nextJob)
	// The submission is acknowledged only after it is durable; the
	// ledger append happens under s.mu so replayed submission order
	// always matches s.order.
	if err := s.commit("submit:"+id, recSubmitted, submittedRec{
		Job: id, Spec: req.Spec, RefParallelism: req.RefParallelism,
		ConfirmRuns: req.ConfirmRuns,
	}, true); err != nil {
		s.mu.Unlock()
		http.Error(w, "cannot record submission: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.nextJob++
	j := &job{jobState: jobState{
		ID:             id,
		Spec:           req.Spec,
		RefParallelism: req.RefParallelism,
		ConfirmRuns:    req.ConfirmRuns,
		State:          StateQueued,
		Completed:      map[int]*search.Report{},
		Abandoned:      map[int]string{},
	}}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	s.nonTerminal++
	if m := s.cfg.Metrics; m != nil {
		m.JobsSubmitted.Inc()
	}
	s.scheduleLocked()
	s.mu.Unlock()
	s.cfg.Logf("jobs: %s submitted (program %s, ref -p %d)", id, req.Spec.Program, req.RefParallelism)
	writeJSON(w, SubmitResponse{JobID: id})
}

func (s *Server) statusLocked(j *job) JobStatus {
	return JobStatus{
		JobID:          j.ID,
		Program:        j.Spec.Program,
		State:          j.State,
		Error:          j.Error,
		RefParallelism: j.RefParallelism,
		Shards:         planShardCount(j.Plan),
		Decided:        j.decided,
		HasReport:      len(j.RunReport) > 0,
	}
}

// handleJob serves /v1/jobs/<id>, /v1/jobs/<id>/cancel, and
// /v1/jobs/<id>/report.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, PathJobs+"/")
	id, action, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	switch action {
	case "":
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		s.mu.Lock()
		st := s.statusLocked(j)
		s.mu.Unlock()
		writeJSON(w, st)
	case "cancel":
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		s.handleCancel(w, j)
	case "report":
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		s.mu.Lock()
		report := j.RunReport
		state := j.State
		s.mu.Unlock()
		if len(report) == 0 {
			http.Error(w, fmt.Sprintf("job %s has no report (state %s)", id, state), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(report)
	default:
		http.Error(w, "unknown action", http.StatusNotFound)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, j *job) {
	s.mu.Lock()
	switch j.State {
	case StateDone, StateFailed, StateCancelled:
		st := j.State
		s.mu.Unlock()
		writeJSON(w, CancelResponse{JobID: j.ID, State: st})
		return
	case StateQueued:
		if err := s.commit("done:"+j.ID, recDone, doneRec{Job: j.ID, State: StateCancelled}, true); err != nil {
			s.mu.Unlock()
			http.Error(w, "cannot record cancellation: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		j.State = StateCancelled
		s.nonTerminal--
		for i, id := range s.queue {
			if id == j.ID {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		if m := s.cfg.Metrics; m != nil {
			m.JobsCancelled.Inc()
		}
		s.mu.Unlock()
		s.cfg.Logf("jobs: %s cancelled while queued", j.ID)
		writeJSON(w, CancelResponse{JobID: j.ID, State: StateCancelled})
		return
	default: // running
		j.cancelRequested = true
		coord := j.coord
		s.mu.Unlock()
		if coord != nil {
			// Outside s.mu: coordinator locks come first (see package
			// comment).
			coord.Interrupt()
		}
		s.cfg.Logf("jobs: %s cancellation requested", j.ID)
		writeJSON(w, CancelResponse{JobID: j.ID, State: StateCancelled})
		return
	}
}

// handleAssign round-robins pool workers over running jobs.
func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Only jobs whose coordinator is actually mounted are assignable.
	var ready []string
	for _, id := range s.activeIDs {
		if j := s.jobs[id]; j != nil && j.handler != nil {
			ready = append(ready, id)
		}
	}
	if len(ready) == 0 {
		writeJSON(w, AssignResponse{Status: AssignWait})
		return
	}
	id := ready[s.rr%len(ready)]
	s.rr++
	writeJSON(w, AssignResponse{Status: AssignWork, JobID: id, Path: PathJobPrefix + id})
}

// handleJobProxy routes /job/<id>/... into that job's coordinator.
func (s *Server) handleJobProxy(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, PathJobPrefix)
	id, _, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	var h http.Handler
	if j := s.jobs[id]; j != nil {
		h = j.handler
	}
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "job not running here", http.StatusNotFound)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *Server) serviceStatusLocked() ServiceStatus {
	st := ServiceStatus{Quarantined: s.quarantined, BadRecords: len(s.badRecs)}
	for _, j := range s.jobs {
		switch j.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.serviceStatusLocked()
	s.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap obs.Snapshot
	if s.cfg.Metrics != nil {
		snap = s.cfg.Metrics.Snapshot()
	}
	s.mu.Lock()
	st := s.serviceStatusLocked()
	s.mu.Unlock()
	writeJSON(w, MetricsResponse{Metrics: snap, Status: st})
}

// JobIDs returns every known job id in submission order (tests and
// status tooling).
func (s *Server) JobIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// sortIDs sorts job ids numerically (j2 before j10).
func sortIDs(ids []string) {
	sort.Slice(ids, func(a, b int) bool {
		var na, nb int
		fmt.Sscanf(ids[a], "j%d", &na)
		fmt.Sscanf(ids[b], "j%d", &nb)
		return na < nb
	})
}
