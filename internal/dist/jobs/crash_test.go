package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fairmc/internal/ledger"
)

// crashSubs is the multi-job workload the crash harness drives: one
// job that decides every shard and one that seals early on a
// violation, so crash points cover both completion shapes.
var crashSubs = []struct {
	program string
	refPar  int
}{
	{"fig3", 2},
	{"racy", 1},
}

// driveCrashRun starts a service on dir with the given crash hook,
// submits the workload (tolerating failures — a crash during submit
// is part of the exercise), and serves it with ONE pool worker so the
// sequence of commit points is deterministic. It runs until
// until(url) holds, then tears everything down.
func driveCrashRun(t *testing.T, dir string, hook func(string) bool, until func(url string) bool) {
	t.Helper()
	s, err := New(Config{
		Dir:        dir,
		Lookup:     testLookup,
		LeaseTTL:   5 * time.Second,
		DrainGrace: 50 * time.Millisecond,
		Logf:       func(string, ...any) {},
		crashHook:  hook,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(s.Handler())

	for _, sb := range crashSubs {
		trySubmit(srv.URL, sb.program, baseOpts, sb.refPar)
	}

	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunPoolWorker(PoolConfig{
			URL: srv.URL, WorkDir: t.TempDir(), Lookup: testLookup,
			Retry: fastPolicy(7), Poll: 10 * time.Millisecond, Stop: stopCh,
		})
	}()

	deadline := time.After(60 * time.Second)
	for !until(srv.URL) {
		select {
		case <-deadline:
			close(stopCh)
			wg.Wait()
			srv.Close()
			s.Close()
			t.Fatal("crash run did not reach its stopping condition")
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stopCh)
	wg.Wait()
	srv.Close()
	s.Close() // ledger may be frozen; the unclean-close error is the point
}

// allTerminal reports whether the service lists at least one job and
// every listed job is terminal.
func allTerminal(url string) bool {
	resp, err := http.Get(url + PathJobs)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var list ListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return false
	}
	if len(list.Jobs) == 0 {
		return false
	}
	for _, js := range list.Jobs {
		if js.State != StateDone && js.State != StateFailed && js.State != StateCancelled {
			return false
		}
	}
	return true
}

// auditLedger replays the WAL and fails on the forbidden pattern: a
// shard granted AFTER its completion committed — a recovered service
// re-exploring work the ledger already owns.
func auditLedger(t *testing.T, dir string) {
	t.Helper()
	led, rec, err := ledger.Open(dir, ledger.Options{})
	if err != nil {
		t.Fatalf("audit open: %v", err)
	}
	defer led.Close()
	type key struct {
		job   string
		shard int
	}
	done := map[key]bool{}
	for _, r := range rec.Records {
		switch r.Type {
		case recShardDone:
			var sd shardDoneRec
			if err := json.Unmarshal(r.Data, &sd); err != nil {
				t.Fatalf("audit: seq %d: %v", r.Seq, err)
			}
			done[key{sd.Job, sd.Shard}] = true
		case recGrant:
			var g grantRec
			if err := json.Unmarshal(r.Data, &g); err != nil {
				t.Fatalf("audit: seq %d: %v", r.Seq, err)
			}
			if done[key{g.Job, g.Shard}] {
				t.Fatalf("audit: seq %d grants %s shard %d after its completion committed", r.Seq, g.Job, g.Shard)
			}
		}
	}
}

// verifyRecovered restarts the service on dir with no crash hook,
// lets a fresh pool finish whatever the WAL says is unfinished, and
// checks every surviving job lands done with the artifact its local
// reference run produces.
func verifyRecovered(t *testing.T, dir string, point string) {
	t.Helper()
	s, srv := startService(t, Config{Dir: dir, Logf: func(string, ...any) {}})
	defer s.Close()
	startPool(t, srv.URL, t.TempDir(), 1)

	if len(s.JobIDs()) == 0 {
		// The crash landed before the first submission committed; full
		// recovery of an empty service is just an empty service.
		return
	}
	deadline := time.After(60 * time.Second)
	for !allTerminal(srv.URL) {
		select {
		case <-deadline:
			t.Fatalf("crash at %q: recovery never finished", point)
		case <-time.After(10 * time.Millisecond):
		}
	}
	for _, id := range s.JobIDs() {
		st := jobStatus(t, srv.URL, id)
		if st.State != StateDone {
			t.Fatalf("crash at %q: %s recovered to %q (%s), want done", point, id, st.State, st.Error)
		}
		got := fetchReport(t, srv.URL, id)
		want := localReportBytes(t, st.Program, baseOpts, st.RefParallelism)
		if !bytes.Equal(got, want) {
			t.Fatalf("crash at %q: %s artifact differs after recovery:\n%s\nvs\n%s", point, id, got, want)
		}
	}
}

func isGrantPoint(p string) bool {
	return strings.HasPrefix(p, "pre:grant:") || strings.HasPrefix(p, "post:grant:")
}

// TestJobsCrashAtEveryCommitPoint kills the service (by freezing its
// ledger — the disk's view of kill -9) at every synchronous WAL
// commit point of a two-job run, restarts it on the same directory,
// and asserts full recovery: all surviving jobs complete, artifacts
// are byte-identical to local reference runs, and no ledger-committed
// shard is ever granted again.
func TestJobsCrashAtEveryCommitPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is slow")
	}

	// Pass 0: enumerate commit points from an uninterrupted run. Grant
	// records are async audit entries, not commit points — crashing on
	// them is covered by the neighbouring sync points.
	var mu sync.Mutex
	var points []string
	seen := map[string]bool{}
	baseDir := t.TempDir()
	driveCrashRun(t, baseDir, func(p string) bool {
		mu.Lock()
		if !seen[p] && !isGrantPoint(p) {
			seen[p] = true
			points = append(points, p)
		}
		mu.Unlock()
		return false
	}, allTerminal)
	if len(points) < 8 {
		t.Fatalf("baseline hit only %d commit points: %v", len(points), points)
	}
	t.Logf("crash matrix: %d commit points", len(points))
	auditLedger(t, baseDir)

	skipped := 0
	for _, point := range points {
		point := point
		dir := t.TempDir()
		var fired sync.WaitGroup
		fired.Add(1)
		var once sync.Once
		hit := make(chan struct{})
		driveCrashRun(t, dir, func(p string) bool {
			if p == point {
				once.Do(func() { close(hit); fired.Done() })
				return true
			}
			return false
		}, func(url string) bool {
			select {
			case <-hit:
				return true
			default:
				// If the whole workload finished without reaching the
				// point (possible only for early-seal shard decisions that
				// landed differently this run), stop too.
				return allTerminal(url)
			}
		})
		select {
		case <-hit:
		default:
			skipped++
			t.Logf("crash point %q not reached in its run; skipped", point)
			continue
		}
		verifyRecovered(t, dir, point)
		auditLedger(t, dir)
	}
	if skipped*4 > len(points) {
		t.Fatalf("%d/%d crash points skipped — workload not deterministic enough", skipped, len(points))
	}
}
