package jobs

// The WAL schema of the checking service. Each record type below is
// the Data payload of one ledger.Record; the ledger owns framing,
// checksums, and sequence numbers, this file owns meaning.
//
// Commit discipline (what is fsynced when):
//
//   - recSubmitted, recPlan, recDone are commit points: the service
//     must not acknowledge a submission, grant work against a plan, or
//     report a job terminal unless the record is durable. All three
//     append with sync=true.
//   - recShardDone is THE commit point of the whole design: it is
//     appended (sync) BEFORE the shard report reaches the merger, so
//     a crash between the two costs at most re-exploration of shards
//     whose completion never committed — never a shard the ledger
//     calls complete (those are re-seeded via dist.Prior and not
//     re-leased).
//   - recGrant is an audit record (who was asked to explore what); it
//     rides along unsynced and its loss is harmless.
//   - recServerStart marks a process boundary so post-mortem audits
//     can check the recovery invariant: no grant after a restart for
//     a shard with a committed recShardDone before it.

import (
	"encoding/json"
	"fmt"
	"sort"

	"fairmc/internal/dist"
	"fairmc/internal/ledger"
	"fairmc/internal/search"
)

// WAL record types.
const (
	recServerStart = "server_start"
	recSubmitted   = "job_submitted"
	recPlan        = "job_plan"
	recGrant       = "shard_grant"
	recShardDone   = "shard_done"
	recDone        = "job_done"
)

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// serverStartRec marks a service process (re)start.
type serverStartRec struct {
	// Jobs is how many non-terminal jobs the replay re-queued
	// (informational, for audits).
	Jobs int `json:"jobs"`
}

// submittedRec commits a job submission.
type submittedRec struct {
	Job            string          `json:"job"`
	Spec           dist.SearchSpec `json:"spec"`
	RefParallelism int             `json:"refParallelism"`
	ConfirmRuns    int             `json:"confirmRuns,omitempty"`
}

// planRec commits a job's shard plan. The plan is recorded, never
// re-derived: a restarted service must grant exactly the shards the
// original planning produced.
type planRec struct {
	Job         string       `json:"job"`
	OptionsHash uint64       `json:"optionsHash"`
	Plan        *search.Plan `json:"plan"`
}

// grantRec is the audit trail of one lease grant.
type grantRec struct {
	Job    string `json:"job"`
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
}

// shardDoneRec commits one decided shard: a completed report, or an
// abandonment (Report nil, Abandoned set).
type shardDoneRec struct {
	Job         string         `json:"job"`
	OptionsHash uint64         `json:"optionsHash"`
	Shard       int            `json:"shard"`
	Report      *search.Report `json:"report,omitempty"`
	Abandoned   string         `json:"abandoned,omitempty"`
}

// doneRec commits a job's terminal state. RunReport carries the
// deterministic run-report bytes so status and artifact requests
// after a restart are served from the ledger without re-exploration.
// It is []byte (base64 on the wire), NOT json.RawMessage: embedding
// raw JSON would let the record marshaler compact and HTML-escape it,
// and the artifact must survive the round-trip byte-identical.
type doneRec struct {
	Job       string         `json:"job"`
	State     string         `json:"state"` // done | failed | cancelled
	Error     string         `json:"error,omitempty"`
	Report    *search.Report `json:"report,omitempty"`
	RunReport []byte         `json:"runReport,omitempty"`
}

// jobState is the replayed state of one job.
type jobState struct {
	ID             string
	Spec           dist.SearchSpec
	RefParallelism int
	ConfirmRuns    int
	State          string
	Error          string
	OptionsHash    uint64
	Plan           *search.Plan
	Completed      map[int]*search.Report // decided shards; nil = abandoned
	Abandoned      map[int]string         // abandonment reasons
	Report         *search.Report         // final merged report (terminal)
	RunReport      []byte                 // deterministic run-report bytes (terminal)
	SubmitSeq      uint64                 // ledger seq of the submission (FIFO order)
}

// replayState is everything rebuilt from the WAL.
type replayState struct {
	jobs    map[string]*jobState
	order   []string // submission order (by ledger seq)
	maxJob  int      // highest numeric job id seen
	badRecs []string // structurally invalid records (reported, not fatal)
}

// rebuild folds replayed ledger records into service state. Records
// that fail to decode are collected in badRecs — a WAL written by a
// newer build degrades to a visible report, not a crash.
func rebuild(records []ledger.Record) *replayState {
	st := &replayState{jobs: map[string]*jobState{}}
	for _, r := range records {
		switch r.Type {
		case recServerStart:
			// Process boundary; nothing to fold.
		case recSubmitted:
			var rec submittedRec
			if err := json.Unmarshal(r.Data, &rec); err != nil {
				st.bad(r, err)
				continue
			}
			j := &jobState{
				ID:             rec.Job,
				Spec:           rec.Spec,
				RefParallelism: rec.RefParallelism,
				ConfirmRuns:    rec.ConfirmRuns,
				State:          StateQueued,
				Completed:      map[int]*search.Report{},
				Abandoned:      map[int]string{},
				SubmitSeq:      r.Seq,
			}
			st.jobs[rec.Job] = j
			st.order = append(st.order, rec.Job)
			var n int
			if _, err := fmt.Sscanf(rec.Job, "j%d", &n); err == nil && n > st.maxJob {
				st.maxJob = n
			}
		case recPlan:
			var rec planRec
			if err := json.Unmarshal(r.Data, &rec); err != nil {
				st.bad(r, err)
				continue
			}
			if j := st.jobs[rec.Job]; j != nil {
				j.Plan = rec.Plan
				j.OptionsHash = rec.OptionsHash
			}
		case recGrant:
			// Audit only.
		case recShardDone:
			var rec shardDoneRec
			if err := json.Unmarshal(r.Data, &rec); err != nil {
				st.bad(r, err)
				continue
			}
			if j := st.jobs[rec.Job]; j != nil {
				j.Completed[rec.Shard] = rec.Report
				if rec.Report == nil {
					j.Abandoned[rec.Shard] = rec.Abandoned
				}
			}
		case recDone:
			var rec doneRec
			if err := json.Unmarshal(r.Data, &rec); err != nil {
				st.bad(r, err)
				continue
			}
			if j := st.jobs[rec.Job]; j != nil {
				j.State = rec.State
				j.Error = rec.Error
				j.Report = rec.Report
				j.RunReport = rec.RunReport
			}
		default:
			st.badRecs = append(st.badRecs, fmt.Sprintf("seq %d: unknown record type %q", r.Seq, r.Type))
		}
	}
	return st
}

func (st *replayState) bad(r ledger.Record, err error) {
	st.badRecs = append(st.badRecs, fmt.Sprintf("seq %d (%s): %v", r.Seq, r.Type, err))
}

// pending returns the non-terminal jobs in submission order — the
// restart queue.
func (st *replayState) pending() []*jobState {
	var out []*jobState
	for _, id := range st.order {
		j := st.jobs[id]
		if j != nil && (j.State == StateQueued || j.State == StateRunning) {
			out = append(out, j)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].SubmitSeq < out[b].SubmitSeq })
	return out
}

// prior converts a job's replayed progress into the coordinator's
// Prior seed: decided shards are adopted, abandonments re-surface as
// WorkerFailures so the final report still names the coverage loss.
func (j *jobState) prior() *dist.Prior {
	if j.Plan == nil {
		return nil
	}
	p := &dist.Prior{Plan: j.Plan, Completed: map[int]*search.Report{}}
	for idx, rep := range j.Completed {
		p.Completed[idx] = rep
	}
	idxs := make([]int, 0, len(j.Abandoned))
	for idx := range j.Abandoned {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		p.Failures = append(p.Failures, search.WorkerFailure{
			Mode:    "dist",
			Unit:    int64(idx),
			Attempt: 1,
			Panic:   j.Abandoned[idx],
		})
	}
	return p
}
