package jobs

import (
	"fairmc/internal/dist"
	"fairmc/internal/obs"
)

// Service endpoints. Job-scoped coordinator protocols are mounted
// under PathJobPrefix + "<id>" (e.g. /job/j1/v1/lease).
const (
	PathJobs      = "/v1/jobs"   // POST submit, GET list; /v1/jobs/<id>[/cancel|/report]
	PathAssign    = "/v1/assign" // GET: which job should this worker serve?
	PathJobPrefix = "/job/"
	PathStatus    = "/status"
	PathMetrics   = "/metrics"
)

// SubmitRequest submits one checking job.
type SubmitRequest struct {
	// Spec is the full search configuration (the same wire form the
	// coordinator hands to workers).
	Spec dist.SearchSpec `json:"spec"`
	// RefParallelism selects which local -p N run the merged report
	// must be byte-identical to; 0 means 1.
	RefParallelism int `json:"refParallelism,omitempty"`
	// ConfirmRuns is the confirmation-replay count for findings. It is
	// not part of SearchSpec (workers never confirm; the service-side
	// coordinator does), but a job's report must still match a local
	// run with the same -confirm.
	ConfirmRuns int `json:"confirmRuns,omitempty"`
}

// SubmitResponse acknowledges a durably-recorded submission.
type SubmitResponse struct {
	JobID string `json:"jobId"`
}

// JobStatus is one job's public state.
type JobStatus struct {
	JobID          string `json:"jobId"`
	Program        string `json:"program"`
	State          string `json:"state"` // queued | running | done | failed | cancelled
	Error          string `json:"error,omitempty"`
	RefParallelism int    `json:"refParallelism"`
	// Shards/Decided describe exploration progress (0/0 until the job
	// is planned).
	Shards  int `json:"shards"`
	Decided int `json:"decided"`
	// HasReport tells clients an artifact is available at
	// /v1/jobs/<id>/report.
	HasReport bool `json:"hasReport"`
}

// ListResponse is the full job table in submission order.
type ListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// CancelResponse acknowledges a cancellation request.
type CancelResponse struct {
	JobID string `json:"jobId"`
	// State is the job's state after the request: cancelled, or the
	// terminal state it had already reached.
	State string `json:"state"`
}

// Assign statuses.
const (
	// AssignWork: JobID and Path are set; join the coordinator there.
	AssignWork = "work"
	// AssignWait: no running job right now; poll again.
	AssignWait = "wait"
)

// AssignResponse points a pool worker at a running job's coordinator.
type AssignResponse struct {
	Status string `json:"status"`
	JobID  string `json:"jobId,omitempty"`
	// Path is the coordinator mount point relative to the service base
	// URL (e.g. "/job/j1").
	Path string `json:"path,omitempty"`
}

// ServiceStatus is the service-level progress summary.
type ServiceStatus struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Quarantined counts ledger segments sealed aside during recovery;
	// BadRecords counts structurally invalid WAL records. Both nonzero
	// values mean the disk lied and the service kept going.
	Quarantined int `json:"quarantined,omitempty"`
	BadRecords  int `json:"badRecords,omitempty"`
}

// MetricsResponse is the service's aggregated telemetry.
type MetricsResponse struct {
	Metrics obs.Snapshot  `json:"metrics"`
	Status  ServiceStatus `json:"status"`
}
