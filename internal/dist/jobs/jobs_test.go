package jobs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fairmc"
	"fairmc/internal/dist"
	"fairmc/internal/dist/transport"
	"fairmc/internal/engine"
	"fairmc/internal/ledger"
	"fairmc/internal/obs"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
	"fairmc/internal/wm"
)

// fig3 is the paper's Figure 3 spin-loop program.
func fig3(t *engine.T) {
	x := syncmodel.NewIntVar(t, "x", 0)
	hu := t.Go("u", func(t *engine.T) {
		for {
			t.Label(1)
			if x.Load(t) == 1 {
				break
			}
			t.Yield()
		}
	})
	ht := t.Go("t", func(t *engine.T) {
		x.Store(t, 1)
	})
	ht.Join(t)
	hu.Join(t)
}

// racyIncrement is a lost-update race.
func racyIncrement(t *engine.T) {
	x := syncmodel.NewIntVar(t, "x", 0)
	wg := syncmodel.NewWaitGroup(t, "wg", 2)
	for i := 0; i < 2; i++ {
		t.Go("inc", func(t *engine.T) {
			v := x.Load(t)
			x.Store(t, v+1)
			wg.Done(t)
		})
	}
	wg.Wait(t)
	t.Assert(x.Load(t) == 2, "lost update")
}

// sbWeak is the store-buffering litmus shape over the weak-memory
// subsystem: it follows the search's memory-model option, so a job
// submitted with MemModel "tso" explores flush delay (and finds the
// weak outcome), exercising memory-model plumbing through the wire
// protocol and the ledger.
func sbWeak(t *engine.T) {
	m := wm.New(t, "m", 2)
	r0 := syncmodel.NewIntVar(t, "r0", -1)
	r1 := syncmodel.NewIntVar(t, "r1", -1)
	wg := syncmodel.NewWaitGroup(t, "wg", 2)
	t.Go("a", func(t *engine.T) {
		m.Store(t, 0, 1)
		r0.Store(t, m.Load(t, 1))
		wg.Done(t)
	})
	t.Go("b", func(t *engine.T) {
		m.Store(t, 1, 1)
		r1.Store(t, m.Load(t, 0))
		wg.Done(t)
	})
	wg.Wait(t)
	t.Assert(r0.Load(t) == 1 || r1.Load(t) == 1, "sb weak outcome")
	m.Drain(t)
}

var testProgs = map[string]func(*engine.T){
	"fig3":   fig3,
	"racy":   racyIncrement,
	"sbweak": sbWeak,
}

func testLookup(name string) (func(*engine.T), bool) {
	p, ok := testProgs[name]
	return p, ok
}

var baseOpts = search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}

// dporJobOpts submits a DPOR search: the job's shard plan starts as a
// single root unit and grows as units merge.
var dporJobOpts = search.Options{
	Fair:                   false,
	ContextBound:           -1,
	MaxSteps:               10000,
	DPOR:                   true,
	ContinueAfterViolation: true,
}

// tsoJobOpts submits a TSO search: schedules and digests include
// flush-agent steps, and the spec carries the memory model.
var tsoJobOpts = search.Options{
	Fair:                   true,
	ContextBound:           -1,
	MaxSteps:               10000,
	MemModel:               "tso",
	ContinueAfterViolation: true,
}

// fastPolicy is an aggressive retry policy so tests converge quickly.
func fastPolicy(seed uint64) transport.Policy {
	return transport.Policy{
		MaxAttempts: 6,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Seed:        seed,
	}
}

// startService builds a Server on cfg (filling test defaults) and
// serves it on an httptest server.
func startService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Lookup == nil {
		cfg.Lookup = testLookup
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 5 * time.Second
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 250 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

// startPool launches n pool workers against url; the returned stop
// function halts them and waits for clean exits.
func startPool(t *testing.T, url, workDir string, n int) (stop func()) {
	t.Helper()
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunPoolWorker(PoolConfig{
				URL:     url,
				WorkDir: workDir,
				Lookup:  testLookup,
				Retry:   fastPolicy(uint64(i)),
				Poll:    20 * time.Millisecond,
				Stop:    stopCh,
			})
		}(i)
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			close(stopCh)
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("pool worker %d: %v", i, err)
				}
			}
		})
	}
	t.Cleanup(stop)
	return stop
}

func submitJob(t *testing.T, url, program string, opts search.Options, refPar int) string {
	t.Helper()
	id, status, err := trySubmit(url, program, opts, refPar)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("submit: HTTP %d", status)
	}
	return id
}

func trySubmit(url, program string, opts search.Options, refPar int) (string, int, error) {
	body, _ := json.Marshal(SubmitRequest{
		Spec:           dist.SpecFromOptions(program, opts),
		RefParallelism: refPar,
	})
	resp, err := http.Post(url+PathJobs, "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", resp.StatusCode, nil
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", resp.StatusCode, err
	}
	return sr.JobID, resp.StatusCode, nil
}

func jobStatus(t *testing.T, url, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(url + PathJobs + "/" + id)
	if err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	return st
}

// waitState polls until the job reaches state (any terminal state
// fails fast if it is the wrong one).
func waitState(t *testing.T, url, id, state string) JobStatus {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		st := jobStatus(t, url, id)
		if st.State == state {
			return st
		}
		if st.State == StateDone || st.State == StateFailed || st.State == StateCancelled {
			t.Fatalf("%s reached %q (error %q), want %q", id, st.State, st.Error, state)
		}
		select {
		case <-deadline:
			t.Fatalf("%s stuck in %q, want %q", id, st.State, state)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func fetchReport(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + PathJobs + "/" + id + "/report")
	if err != nil {
		t.Fatalf("report %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: HTTP %d", id, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("report %s: %v", id, err)
	}
	return data
}

// localReportBytes renders the run report of an uninterrupted local
// run at refPar — the byte-identity reference for service artifacts.
func localReportBytes(t *testing.T, program string, opts search.Options, refPar int) []byte {
	t.Helper()
	spec := dist.SpecFromOptions(program, opts)
	ref := spec.Options()
	ref.Parallelism = refPar
	prog, _ := testLookup(program)
	rep := search.Explore(prog, ref)
	data, err := fairmc.ResultFromReport(rep).RunReport(program, spec.Options()).Encode()
	if err != nil {
		t.Fatalf("local report: %v", err)
	}
	return data
}

// TestJobsServiceEndToEnd: three jobs share one two-worker pool under
// MaxActive=2; every artifact is byte-identical to its local
// reference run.
func TestJobsServiceEndToEnd(t *testing.T) {
	m := &obs.Metrics{}
	_, srv := startService(t, Config{
		Dir: t.TempDir(), MaxActive: 2, Metrics: m,
	})
	startPool(t, srv.URL, t.TempDir(), 2)

	type sub struct {
		program string
		opts    search.Options
		refPar  int
	}
	subs := []sub{
		{"fig3", baseOpts, 1},
		{"fig3", baseOpts, 2},
		{"racy", baseOpts, 2},
		{"racy", dporJobOpts, 2},
		{"sbweak", tsoJobOpts, 2},
	}
	var ids []string
	for _, sb := range subs {
		ids = append(ids, submitJob(t, srv.URL, sb.program, sb.opts, sb.refPar))
	}
	for i, id := range ids {
		// A violation-finding job may seal before every shard is decided
		// (the search stops at the first counterexample), so Decided only
		// has a lower bound here.
		st := waitState(t, srv.URL, id, StateDone)
		if !st.HasReport || st.Shards == 0 || st.Decided == 0 || st.Decided > st.Shards {
			t.Fatalf("%s finished oddly: %+v", id, st)
		}
		got := fetchReport(t, srv.URL, id)
		want := localReportBytes(t, subs[i].program, subs[i].opts, subs[i].refPar)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s artifact differs from local -p %d run:\n%s\nvs\n%s",
				id, subs[i].refPar, got, want)
		}
	}

	// List shows all submissions, in order, done.
	resp, err := http.Get(srv.URL + PathJobs)
	if err != nil {
		t.Fatal(err)
	}
	var list ListResponse
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list.Jobs) != len(subs) {
		t.Fatalf("list = %+v", list)
	}
	for i, js := range list.Jobs {
		if js.JobID != ids[i] || js.State != StateDone {
			t.Fatalf("list[%d] = %+v, want %s done", i, js, ids[i])
		}
	}
	snap := m.Snapshot()
	if snap.JobsSubmitted != int64(len(subs)) || snap.JobsDone != int64(len(subs)) {
		t.Fatalf("metrics: %+v", snap)
	}
	if snap.LedgerAppends == 0 {
		t.Fatal("no ledger appends recorded")
	}
}

// TestJobsRestartServesReportsWithoutReExploration: a restarted
// service answers status and artifact requests for completed jobs
// purely from the ledger — no worker ever runs in the second
// incarnation.
func TestJobsRestartServesReportsWithoutReExploration(t *testing.T) {
	dir := t.TempDir()
	s1, srv1 := startService(t, Config{Dir: dir})
	startPool(t, srv1.URL, t.TempDir(), 1)
	id := submitJob(t, srv1.URL, "racy", baseOpts, 2)
	waitState(t, srv1.URL, id, StateDone)
	want := fetchReport(t, srv1.URL, id)
	srv1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}

	m := &obs.Metrics{}
	s2, srv2 := startService(t, Config{Dir: dir, Metrics: m})
	defer s2.Close()
	st := jobStatus(t, srv2.URL, id)
	if st.State != StateDone || !st.HasReport {
		t.Fatalf("replayed status: %+v", st)
	}
	got := fetchReport(t, srv2.URL, id)
	if !bytes.Equal(got, want) {
		t.Fatalf("artifact changed across restart:\n%s\nvs\n%s", got, want)
	}
	if ex := m.Snapshot().Executions; ex != 0 {
		t.Fatalf("restart re-explored a completed job (%d executions)", ex)
	}
}

// TestJobsRestartResumesUnfinished: a job interrupted by service
// shutdown is re-queued on restart and completes with the same
// artifact an uninterrupted run produces.
func TestJobsRestartResumesUnfinished(t *testing.T) {
	dir := t.TempDir()
	s1, srv1 := startService(t, Config{Dir: dir})
	// No workers: the job mounts and sits there.
	id := submitJob(t, srv1.URL, "fig3", baseOpts, 2)
	waitState(t, srv1.URL, id, StateRunning)
	srv1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}

	s2, srv2 := startService(t, Config{Dir: dir})
	defer s2.Close()
	startPool(t, srv2.URL, t.TempDir(), 2)
	waitState(t, srv2.URL, id, StateDone)
	got := fetchReport(t, srv2.URL, id)
	if want := localReportBytes(t, "fig3", baseOpts, 2); !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact differs:\n%s\nvs\n%s", got, want)
	}
}

// postProto is a minimal protocol client for driving a job's
// coordinator by hand.
func postProto(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJobsDPORRestartResumesMidSearch: a DPOR job's ledger records
// completed units at indices beyond the recorded one-shard plan (the
// plan grows as units merge). A restarted service must adopt those
// records — re-offering them in index order regenerates the same
// children — and finish with the artifact an uninterrupted run
// produces. Two units are completed by hand so the crash point is
// deterministic and strictly inside the grown region.
func TestJobsDPORRestartResumesMidSearch(t *testing.T) {
	dir := t.TempDir()
	s1, srv1 := startService(t, Config{Dir: dir})
	id := submitJob(t, srv1.URL, "racy", dporJobOpts, 2)
	waitState(t, srv1.URL, id, StateRunning)

	// Find the mounted coordinator and complete units 0 and 1 through
	// the wire protocol (unit 1 exists only after unit 0's merge grew
	// the plan).
	var asn AssignResponse
	resp, err := http.Get(srv1.URL + PathAssign)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&asn); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if asn.Status != AssignWork || asn.JobID != id {
		t.Fatalf("assign = %+v, want work on %s", asn, id)
	}
	base := srv1.URL + asn.Path
	opts := dist.SpecFromOptions("racy", dporJobOpts).Options()
	var join dist.JoinResponse
	postProto(t, base+dist.PathJoin, dist.JoinRequest{Capacity: 1}, &join)
	for i := 0; i < 2; i++ {
		var lr dist.LeaseResponse
		postProto(t, base+dist.PathLease, dist.LeaseRequest{WorkerID: join.WorkerID}, &lr)
		if lr.Status != dist.LeaseWork {
			t.Fatalf("lease %d: status %q", i, lr.Status)
		}
		if lr.Shard.Unit == nil {
			t.Fatalf("lease %d: shard %d carries no DPOR unit", i, lr.Shard.Index)
		}
		rep := search.RunShard(testProgs["racy"], opts, *lr.Shard, nil)
		var rr dist.ResultResponse
		postProto(t, base+dist.PathResult, dist.ResultRequest{
			WorkerID: join.WorkerID, LeaseID: lr.LeaseID, Shard: lr.Shard.Index, Report: rep,
		}, &rr)
		if !rr.Accepted {
			t.Fatalf("result %d not accepted", i)
		}
	}
	srv1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}

	s2, srv2 := startService(t, Config{Dir: dir})
	defer s2.Close()
	startPool(t, srv2.URL, t.TempDir(), 2)
	waitState(t, srv2.URL, id, StateDone)
	got := fetchReport(t, srv2.URL, id)
	if want := localReportBytes(t, "racy", dporJobOpts, 2); !bytes.Equal(got, want) {
		t.Fatalf("resumed DPOR artifact differs:\n%s\nvs\n%s", got, want)
	}
}

// TestJobsAdmissionControl: beyond MaxJobs the service sheds
// submissions with 429 + Retry-After instead of queueing without
// bound.
func TestJobsAdmissionControl(t *testing.T) {
	m := &obs.Metrics{}
	_, srv := startService(t, Config{Dir: t.TempDir(), MaxJobs: 2, Metrics: m})
	// No workers: both jobs stay non-terminal.
	submitJob(t, srv.URL, "fig3", baseOpts, 1)
	submitJob(t, srv.URL, "fig3", baseOpts, 1)

	body, _ := json.Marshal(SubmitRequest{Spec: dist.SpecFromOptions("fig3", baseOpts)})
	resp, err := http.Post(srv.URL+PathJobs, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if m.Snapshot().JobsShed != 1 {
		t.Fatalf("metrics: %+v", m.Snapshot())
	}
}

// TestJobsCancel: a queued job cancels immediately; a running job is
// interrupted and lands in cancelled durably (it stays cancelled
// after a restart).
func TestJobsCancel(t *testing.T) {
	dir := t.TempDir()
	s1, srv := startService(t, Config{Dir: dir, MaxActive: 1})
	// No workers: j1 mounts and blocks, j2 queues behind MaxActive=1.
	id1 := submitJob(t, srv.URL, "fig3", baseOpts, 1)
	id2 := submitJob(t, srv.URL, "fig3", baseOpts, 1)
	waitState(t, srv.URL, id1, StateRunning)
	if st := jobStatus(t, srv.URL, id2); st.State != StateQueued {
		t.Fatalf("j2 state = %q, want queued", st.State)
	}

	cancel := func(id string) CancelResponse {
		resp, err := http.Post(srv.URL+PathJobs+"/"+id+"/cancel", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cr CancelResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		return cr
	}
	if cr := cancel(id2); cr.State != StateCancelled {
		t.Fatalf("queued cancel: %+v", cr)
	}
	if st := jobStatus(t, srv.URL, id2); st.State != StateCancelled {
		t.Fatalf("j2 after cancel: %+v", st)
	}
	cancel(id1)
	deadline := time.After(15 * time.Second)
	for jobStatus(t, srv.URL, id1).State != StateCancelled {
		select {
		case <-deadline:
			t.Fatalf("j1 never cancelled: %+v", jobStatus(t, srv.URL, id1))
		case <-time.After(20 * time.Millisecond):
		}
	}
	srv.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Cancellations are durable.
	s2, srv2 := startService(t, Config{Dir: dir})
	defer s2.Close()
	for _, id := range []string{id1, id2} {
		if st := jobStatus(t, srv2.URL, id); st.State != StateCancelled {
			t.Fatalf("%s after restart: %+v", id, st)
		}
	}
}

// TestJobsUnknownProgram: submissions naming a program the service
// cannot run are refused at admission, not queued to fail later.
func TestJobsUnknownProgram(t *testing.T) {
	_, srv := startService(t, Config{Dir: t.TempDir()})
	_, status, err := trySubmit(srv.URL, "no-such-program", baseOpts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", status)
	}
}

// TestJobsStatusEndpoint: the service-level summary tracks job states.
func TestJobsStatusEndpoint(t *testing.T) {
	_, srv := startService(t, Config{Dir: t.TempDir()})
	startPool(t, srv.URL, t.TempDir(), 1)
	id := submitJob(t, srv.URL, "racy", baseOpts, 1)
	waitState(t, srv.URL, id, StateDone)

	resp, err := http.Get(srv.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServiceStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Queued+st.Running+st.Failed+st.Cancelled != 0 {
		t.Fatalf("service status: %+v", st)
	}

	mresp, err := http.Get(srv.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Status.Done != 1 {
		t.Fatalf("metrics status: %+v", mr.Status)
	}
}

// TestJobsRebuildBadRecordsSurfaced: WAL records from a future build
// (unknown type, or a known type that fails to decode) are reported
// in badRecs, never fatal, and never corrupt neighbouring jobs.
func TestJobsRebuildBadRecordsSurfaced(t *testing.T) {
	sub, _ := json.Marshal(submittedRec{Job: "j1", Spec: dist.SpecFromOptions("fig3", baseOpts)})
	st := rebuild([]ledger.Record{
		{Seq: 1, Type: recSubmitted, Data: sub},
		{Seq: 2, Type: "hologram_checkpoint", Data: json.RawMessage(`{}`)},
		{Seq: 3, Type: recPlan, Data: json.RawMessage(`{"job":`)},
	})
	if len(st.badRecs) != 2 {
		t.Fatalf("badRecs = %v, want 2", st.badRecs)
	}
	if j := st.jobs["j1"]; j == nil || j.State != StateQueued {
		t.Fatalf("good record lost next to bad ones: %+v", st.jobs)
	}
}

// jobIDsNumeric exercises sortIDs ordering.
func TestJobsSortIDs(t *testing.T) {
	ids := []string{"j10", "j2", "j1"}
	sortIDs(ids)
	if got := strings.Join(ids, ","); got != "j1,j2,j10" {
		t.Fatalf("sortIDs = %s", got)
	}
}
