package dist_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fairmc"
	"fairmc/internal/dist"
	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
)

// fig3 is the paper's Figure 3 spin-loop program (terminates under the
// fair scheduler; diverges under the unfair one).
func fig3(t *engine.T) {
	x := syncmodel.NewIntVar(t, "x", 0)
	hu := t.Go("u", func(t *engine.T) {
		for {
			t.Label(1)
			if x.Load(t) == 1 {
				break
			}
			t.Yield()
		}
	})
	ht := t.Go("t", func(t *engine.T) {
		x.Store(t, 1)
	})
	ht.Join(t)
	hu.Join(t)
}

// racyIncrement is a lost-update race; the assertion fails on schedules
// that preempt between a load and its store.
func racyIncrement(t *engine.T) {
	x := syncmodel.NewIntVar(t, "x", 0)
	wg := syncmodel.NewWaitGroup(t, "wg", 2)
	for i := 0; i < 2; i++ {
		t.Go("inc", func(t *engine.T) {
			v := x.Load(t)
			x.Store(t, v+1)
			wg.Done(t)
		})
	}
	wg.Wait(t)
	t.Assert(x.Load(t) == 2, "lost update")
}

var testProgs = map[string]func(*engine.T){
	"fig3": fig3,
	"racy": racyIncrement,
}

func lookup(name string) (func(*engine.T), bool) {
	p, ok := testProgs[name]
	return p, ok
}

// startCoordinator builds a coordinator for prog/opts and serves its
// handler on an httptest server.
func startCoordinator(t *testing.T, cfg dist.CoordinatorConfig) (*dist.Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := dist.NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return coord, srv
}

// runWorkers runs n in-process workers against url and waits for all
// of them to exit.
func runWorkers(t *testing.T, url string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = dist.RunWorker(dist.WorkerConfig{URL: url, Lookup: lookup})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// normalize strips wall-clock fields so reports compare by content.
func normalize(r *search.Report) *search.Report {
	c := *r
	c.Elapsed = 0
	return &c
}

// runReportBytes renders the deterministic run report — the
// distributed headline contract is byte-identity of this document.
func runReportBytes(t *testing.T, rep *search.Report, program string, opts search.Options) []byte {
	t.Helper()
	data, err := fairmc.ResultFromReport(rep).RunReport(program, opts).Encode()
	if err != nil {
		t.Fatalf("run report: %v", err)
	}
	return data
}

// TestDistMatchesLocal: a coordinator with two workers produces the
// same report — field for field, and byte for byte as a run report —
// as a local Parallelism=2 run, for both shard strategies.
func TestDistMatchesLocal(t *testing.T) {
	cases := []struct {
		name    string
		program string
		opts    search.Options
	}{
		{"prefix-clean", "fig3", search.Options{
			Fair: true, ContextBound: -1, MaxSteps: 10000,
		}},
		{"prefix-bug", "racy", search.Options{
			Fair: true, ContextBound: -1, MaxSteps: 10000,
			ContinueAfterViolation: true, ConfirmRuns: 2,
		}},
		{"stride", "racy", search.Options{
			Fair: true, RandomWalk: true, MaxExecutions: 400, MaxSteps: 1000,
			Seed: 3, ContinueAfterViolation: true, ConfirmRuns: 2,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := testProgs[tc.program]
			coord, srv := startCoordinator(t, dist.CoordinatorConfig{
				Prog:           prog,
				Program:        tc.program,
				Options:        tc.opts,
				RefParallelism: 2,
			})
			runWorkers(t, srv.URL, 2)
			got := coord.Wait()

			ref := tc.opts
			ref.Parallelism = 2
			want := search.Explore(prog, ref)
			if !reflect.DeepEqual(normalize(want), normalize(got)) {
				t.Fatalf("distributed report differs from local -p 2:\n%+v\nvs\n%+v", want, got)
			}
			if w, g := runReportBytes(t, want, tc.program, tc.opts), runReportBytes(t, got, tc.program, tc.opts); !bytes.Equal(w, g) {
				t.Fatalf("run report not byte-identical:\n%s\nvs\n%s", w, g)
			}
		})
	}
}

// postJSON is a minimal protocol client for fault injection.
func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistWorkerDeathRequeues: a worker leases a shard and goes silent
// (a crash, as the coordinator sees it). The lease expires, the shard
// requeues excluding the dead worker, a healthy worker finishes the
// search — and the report is still byte-identical to the local run,
// with the crash recorded as a structured WorkerFailure.
func TestDistWorkerDeathRequeues(t *testing.T) {
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	coord, srv := startCoordinator(t, dist.CoordinatorConfig{
		Prog:           fig3,
		Program:        "fig3",
		Options:        opts,
		RefParallelism: 2,
		LeaseTTL:       500 * time.Millisecond,
	})

	// The doomed worker: joins, leases one shard, never speaks again.
	var join dist.JoinResponse
	postJSON(t, srv.URL+dist.PathJoin, dist.JoinRequest{Capacity: 1}, &join)
	var lr dist.LeaseResponse
	postJSON(t, srv.URL+dist.PathLease, dist.LeaseRequest{WorkerID: join.WorkerID}, &lr)
	if lr.Status != dist.LeaseWork {
		t.Fatalf("lease status %q, want %q", lr.Status, dist.LeaseWork)
	}

	runWorkers(t, srv.URL, 1)
	got := coord.Wait()

	var found bool
	for _, wf := range got.WorkerFailures {
		if wf.Mode == "dist" && wf.Unit == int64(lr.Shard.Index) &&
			strings.Contains(wf.Panic, "lease expired") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no lease-expiry WorkerFailure for shard %d: %+v", lr.Shard.Index, got.WorkerFailures)
	}
	if got.Skipped != 0 {
		t.Fatalf("shard was skipped, not requeued: %+v", got)
	}

	ref := opts
	ref.Parallelism = 2
	want := search.Explore(fig3, ref)
	if w, g := runReportBytes(t, want, "fig3", opts), runReportBytes(t, got, "fig3", opts); !bytes.Equal(w, g) {
		t.Fatalf("run report not byte-identical after worker death:\n%s\nvs\n%s", w, g)
	}
}

// TestDistCoordinatorResume: a coordinator with a state file is killed
// mid-search; a new coordinator with the same configuration resumes
// from the file (completed shards are not re-run) and the final report
// is byte-identical to the local run.
func TestDistCoordinatorResume(t *testing.T) {
	statePath := t.TempDir() + "/coord-state.json"
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	cfg := dist.CoordinatorConfig{
		Prog:           fig3,
		Program:        "fig3",
		Options:        opts,
		RefParallelism: 2,
		StatePath:      statePath,
	}
	coordA, srvA := startCoordinator(t, cfg)

	// Complete two shards through the protocol, then kill A.
	var join dist.JoinResponse
	postJSON(t, srvA.URL+dist.PathJoin, dist.JoinRequest{Capacity: 1}, &join)
	for i := 0; i < 2; i++ {
		var lr dist.LeaseResponse
		postJSON(t, srvA.URL+dist.PathLease, dist.LeaseRequest{WorkerID: join.WorkerID}, &lr)
		if lr.Status != dist.LeaseWork {
			t.Fatalf("lease %d: status %q", i, lr.Status)
		}
		rep := search.RunShard(fig3, opts, *lr.Shard, nil)
		var rr dist.ResultResponse
		postJSON(t, srvA.URL+dist.PathResult, dist.ResultRequest{
			WorkerID: join.WorkerID, LeaseID: lr.LeaseID, Shard: lr.Shard.Index, Report: rep,
		}, &rr)
		if !rr.Accepted {
			t.Fatalf("result %d not accepted", i)
		}
	}
	coordA.Interrupt()
	if rep := coordA.Wait(); !rep.Interrupted {
		t.Fatalf("interrupted coordinator's report not marked Interrupted: %+v", rep)
	}
	srvA.Close()

	// B resumes from the state file.
	var logs []string
	var logMu sync.Mutex
	cfg.Logf = func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	coordB, srvB := startCoordinator(t, cfg)
	logMu.Lock()
	resumed := false
	for _, l := range logs {
		if strings.Contains(l, "resumed from") && strings.Contains(l, "2/") {
			resumed = true
		}
	}
	logMu.Unlock()
	if !resumed {
		t.Fatalf("coordinator B did not resume 2 decided shards; logs: %q", logs)
	}

	runWorkers(t, srvB.URL, 1)
	got := coordB.Wait()

	ref := opts
	ref.Parallelism = 2
	want := search.Explore(fig3, ref)
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Fatalf("resumed report differs from local -p 2:\n%+v\nvs\n%+v", want, got)
	}
	if w, g := runReportBytes(t, want, "fig3", opts), runReportBytes(t, got, "fig3", opts); !bytes.Equal(w, g) {
		t.Fatalf("run report not byte-identical after coordinator resume:\n%s\nvs\n%s", w, g)
	}
}

// TestDistDoneStateRejected: a finished search's state file must not be
// resumed into a fresh coordinator silently.
func TestDistDoneStateRejected(t *testing.T) {
	statePath := t.TempDir() + "/coord-state.json"
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	cfg := dist.CoordinatorConfig{
		Prog: fig3, Program: "fig3", Options: opts,
		RefParallelism: 2, StatePath: statePath,
	}
	coord, srv := startCoordinator(t, cfg)
	runWorkers(t, srv.URL, 1)
	coord.Wait()

	if _, err := dist.NewCoordinator(cfg); err == nil {
		t.Fatal("NewCoordinator resumed a completed search's state file")
	}
}

// TestDistUnknownProgram: a worker that does not have the coordinator's
// program refuses cleanly instead of running the wrong thing.
func TestDistUnknownProgram(t *testing.T) {
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 10000}
	coord, srv := startCoordinator(t, dist.CoordinatorConfig{
		Prog: fig3, Program: "fig3", Options: opts, RefParallelism: 2,
	})
	err := dist.RunWorker(dist.WorkerConfig{
		URL:    srv.URL,
		Lookup: func(string) (func(*engine.T), bool) { return nil, false },
	})
	if err == nil || !strings.Contains(err.Error(), "does not have") {
		t.Fatalf("err = %v, want unknown-program refusal", err)
	}
	coord.Interrupt()
}
