// Package trace serializes schedules so that counterexamples found by
// the checker can be saved, shared, and replayed later — a stateless
// model checker's entire finding is its schedule, so this file format
// is the checker's bug-report format.
package trace

import (
	"encoding/json"
	"fmt"

	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// Version identifies the file format.
const Version = 1

// Meta describes the run that produced a schedule; replaying with
// different parameters may diverge, so the parameters travel with it.
type Meta struct {
	// Program is the registry name of the model program.
	Program string `json:"program"`
	// Fair and FairK are the scheduler parameters of the run.
	Fair  bool `json:"fair"`
	FairK int  `json:"fairK,omitempty"`
	// MaxSteps is the step bound of the run.
	MaxSteps int64 `json:"maxSteps,omitempty"`
	// MemModel and TSOBufCap are the memory-model parameters of the run
	// (empty means "sc"): a schedule recorded under TSO includes flush
	// steps and only replays under the same model and buffer capacity.
	MemModel  string `json:"memModel,omitempty"`
	TSOBufCap int    `json:"tsoBufCap,omitempty"`
	// Outcome is the expected replay outcome (informational).
	Outcome string `json:"outcome,omitempty"`
	// Note is a free-form description.
	Note string `json:"note,omitempty"`
}

// Validate reports whether the metadata is plausible for replaying
// program. A schedule replayed against the wrong program silently
// diverges at best; rejecting the mismatch up front turns that into a
// diagnostic.
func (m *Meta) Validate(program string) error {
	if m.Program != "" && program != "" && m.Program != program {
		return fmt.Errorf("trace: schedule was recorded for program %q, replaying %q", m.Program, program)
	}
	if m.FairK < 0 {
		return fmt.Errorf("trace: invalid fairK %d", m.FairK)
	}
	if m.MaxSteps < 0 {
		return fmt.Errorf("trace: invalid maxSteps %d", m.MaxSteps)
	}
	return nil
}

// maxSaneTid bounds thread ids accepted from a schedule file. The
// engine numbers threads densely from 0, so a huge tid can only come
// from corruption; rejecting it here beats a guaranteed divergence (or
// a huge allocation) later.
const maxSaneTid = 1 << 20

// file is the on-disk representation.
type file struct {
	Version  int      `json:"version"`
	Meta     Meta     `json:"meta"`
	Schedule [][2]int `json:"schedule"`
}

// Marshal encodes a schedule with its metadata.
func Marshal(meta Meta, schedule []engine.Alt) ([]byte, error) {
	f := file{Version: Version, Meta: meta, Schedule: make([][2]int, len(schedule))}
	for i, a := range schedule {
		f.Schedule[i] = [2]int{int(a.Tid), a.Arg}
	}
	return json.MarshalIndent(f, "", "  ")
}

// Unmarshal decodes a schedule file.
func Unmarshal(data []byte) (Meta, []engine.Alt, error) {
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return Meta{}, nil, fmt.Errorf("trace: %w", err)
	}
	if f.Version != Version {
		return Meta{}, nil, fmt.Errorf("trace: unsupported version %d", f.Version)
	}
	schedule := make([]engine.Alt, len(f.Schedule))
	for i, s := range f.Schedule {
		if s[0] < 0 {
			return Meta{}, nil, fmt.Errorf("trace: negative thread id at step %d", i)
		}
		if s[0] > maxSaneTid {
			return Meta{}, nil, fmt.Errorf("trace: implausible thread id %d at step %d (corrupted schedule?)", s[0], i)
		}
		if s[1] < -1 {
			return Meta{}, nil, fmt.Errorf("trace: invalid choice argument %d at step %d (corrupted schedule?)", s[1], i)
		}
		schedule[i] = engine.Alt{Tid: tidset.Tid(s[0]), Arg: s[1]}
	}
	return f.Meta, schedule, nil
}
