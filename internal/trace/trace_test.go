package trace_test

import (
	"strings"
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
	"fairmc/internal/tidset"
	"fairmc/internal/trace"
)

func TestRoundTrip(t *testing.T) {
	meta := trace.Meta{
		Program:  "wsq-bug2",
		Fair:     true,
		FairK:    2,
		MaxSteps: 5000,
		Outcome:  "violation",
		Note:     "found by cb=2 search",
	}
	sched := []engine.Alt{
		{Tid: 0, Arg: -1},
		{Tid: 3, Arg: 2},
		{Tid: 1, Arg: -1},
	}
	data, err := trace.Marshal(meta, sched)
	if err != nil {
		t.Fatal(err)
	}
	gotMeta, gotSched, err := trace.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if len(gotSched) != len(sched) {
		t.Fatalf("schedule length %d, want %d", len(gotSched), len(sched))
	}
	for i := range sched {
		if gotSched[i] != sched[i] {
			t.Fatalf("step %d: %v != %v", i, gotSched[i], sched[i])
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := trace.Unmarshal([]byte("not json")); err == nil {
		t.Fatal("no error for garbage input")
	}
	bad := strings.Replace(`{"version": 99, "meta": {"program": "x", "fair": true}, "schedule": []}`, "99", "99", 1)
	if _, _, err := trace.Unmarshal([]byte(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version error missing: %v", err)
	}
	neg := `{"version": 1, "meta": {"program": "x", "fair": true}, "schedule": [[-2, -1]]}`
	if _, _, err := trace.Unmarshal([]byte(neg)); err == nil {
		t.Fatal("no error for negative tid")
	}
	hugeTid := `{"version": 1, "meta": {"program": "x", "fair": true}, "schedule": [[9999999, -1]]}`
	if _, _, err := trace.Unmarshal([]byte(hugeTid)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("implausible-tid error missing: %v", err)
	}
	badArg := `{"version": 1, "meta": {"program": "x", "fair": true}, "schedule": [[0, -7]]}`
	if _, _, err := trace.Unmarshal([]byte(badArg)); err == nil || !strings.Contains(err.Error(), "choice argument") {
		t.Fatalf("invalid-arg error missing: %v", err)
	}
	truncated := `{"version": 1, "meta": {"program": "x"}, "schedule": [[0,`
	if _, _, err := trace.Unmarshal([]byte(truncated)); err == nil {
		t.Fatal("no error for truncated file")
	}
}

func TestMetaValidate(t *testing.T) {
	m := trace.Meta{Program: "wsq-bug2", Fair: true}
	if err := m.Validate("wsq-bug2"); err != nil {
		t.Fatalf("matching program rejected: %v", err)
	}
	if err := m.Validate("other-prog"); err == nil {
		t.Fatal("program mismatch accepted")
	}
	if err := (&trace.Meta{FairK: -1}).Validate(""); err == nil {
		t.Fatal("negative fairK accepted")
	}
	if err := (&trace.Meta{MaxSteps: -5}).Validate(""); err == nil {
		t.Fatal("negative maxSteps accepted")
	}
}

// TestSavedScheduleReplays round-trips a real counterexample through
// the file format and replays it to the same outcome.
func TestSavedScheduleReplays(t *testing.T) {
	racy := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			t.Go("inc", func(t *engine.T) {
				v := x.Load(t)
				x.Store(t, v+1)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(x.Load(t) == 2, "lost update")
	}
	rep := search.Explore(racy, search.Options{Fair: true, ContextBound: -1, MaxSteps: 1000})
	if rep.FirstBug == nil {
		t.Fatal("no bug found")
	}
	data, err := trace.Marshal(trace.Meta{Program: "racy", Fair: true}, rep.FirstBug.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	_, sched, err := trace.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	r := engine.Run(racy, &engine.ReplayChooser{Schedule: sched, Strict: true}, engine.Config{
		Fair: true, MaxSteps: 1000,
	})
	if r.Outcome != engine.Violation {
		t.Fatalf("replay outcome = %v, want violation", r.Outcome)
	}
	if r.Violation.Tid != tidset.Tid(0) {
		t.Fatalf("violation on thread %d, want main", r.Violation.Tid)
	}
}
